//! End-to-end service tests: concurrent jobs sharing a grid cache,
//! incremental JSONL streaming, checkpoint resume, and queue
//! backpressure — each ranking checked against a sequential
//! `mudock_core::screen` reference run.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use mudock_core::{screen, DockParams, GaParams};
use mudock_grids::{GridBuilder, GridDims};
use mudock_mol::{Molecule, Vec3};
use mudock_molio::{mediate_like_set, synthetic_receptor};
use mudock_serve::{
    JobSpec, JobState, LigandSource, Priority, ScreenService, ServeConfig, SubmitError,
};
use mudock_simd::SimdLevel;

const SEED: u64 = 42;
const N_LIGANDS: usize = 24;
const CHUNK: usize = 6;
const TOP_K: usize = 5;

fn receptor() -> Arc<Molecule> {
    Arc::new(synthetic_receptor(7, 120, 8.0))
}

fn dims() -> GridDims {
    GridDims::centered(Vec3::ZERO, 10.0, 0.7)
}

fn params() -> DockParams {
    DockParams {
        ga: GaParams {
            population: 10,
            generations: 5,
            ..Default::default()
        },
        seed: SEED,
        search_radius: Some(3.5),
        ..Default::default()
    }
}

fn spec(name: &str) -> JobSpec {
    JobSpec {
        name: name.into(),
        receptor: receptor(),
        ligands: LigandSource::synth(SEED, N_LIGANDS),
        params: params(),
        top_k: TOP_K,
        chunk_size: CHUNK,
        grid_dims: Some(dims()),
        ..JobSpec::default()
    }
}

/// `(index, name, score)` of the reference ranking: a one-shot
/// sequential `core::screen` over the materialized batch.
fn reference_top() -> Vec<(usize, String, f32)> {
    let rec = receptor();
    let grids = GridBuilder::new(&rec, dims()).build_simd(SimdLevel::detect());
    let ligands = mediate_like_set(SEED, N_LIGANDS);
    let summary = screen(&grids, &ligands, &params(), 1);
    summary
        .top_k(TOP_K)
        .into_iter()
        .map(|i| {
            (
                i,
                summary.results[i].name.clone(),
                summary.results[i].best_score.unwrap(),
            )
        })
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mudock-serve-test-{}-{name}", std::process::id()))
}

fn jsonl_lines(path: &PathBuf) -> usize {
    std::fs::read_to_string(path)
        .map(|t| t.lines().count())
        .unwrap_or(0)
}

#[test]
fn concurrent_jobs_share_the_grid_cache_and_stream_results() {
    let service = ScreenService::start(ServeConfig {
        total_threads: 2,
        job_slots: 2,
        queue_capacity: 8,
        cache_capacity: 2,
    });

    let jsonl_a = tmp("concurrent-a.jsonl");
    let jsonl_b = tmp("concurrent-b.jsonl");
    std::fs::remove_file(&jsonl_a).ok();
    std::fs::remove_file(&jsonl_b).ok();

    // Job A observes its own JSONL file at every chunk boundary: the
    // sink flushes *before* the progress callback runs, so the counts
    // are deterministic.
    let observed: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let observer = {
        let observed = Arc::clone(&observed);
        let path = jsonl_a.clone();
        Arc::new(move |p: &mudock_serve::ChunkProgress<'_>| {
            observed
                .lock()
                .unwrap()
                .push((p.chunks_done, jsonl_lines(&path)));
        })
    };

    let mut spec_a = spec("job-a");
    spec_a.jsonl = Some(jsonl_a.clone());
    spec_a.progress = Some(observer);
    let mut spec_b = spec("job-b");
    spec_b.jsonl = Some(jsonl_b.clone());

    let a = service.submit(spec_a).unwrap();
    let b = service.submit(spec_b).unwrap();
    let oa = a.wait();
    let ob = b.wait();

    assert_eq!(oa.state, JobState::Completed);
    assert_eq!(ob.state, JobState::Completed);
    assert_eq!(oa.ligands_done, N_LIGANDS);
    assert_eq!(ob.ligands_done, N_LIGANDS);

    // Same receptor + dims → one build, one hit, whichever job got there
    // second (a build in flight still counts: it ran once).
    assert!(
        oa.grid_cache_hit ^ ob.grid_cache_hit,
        "exactly one of the two jobs must hit the cache (a={}, b={})",
        oa.grid_cache_hit,
        ob.grid_cache_hit
    );
    let stats = service.stats();
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.entries, 1);
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.ligands_docked, 2 * N_LIGANDS as u64);

    // JSONL streamed incrementally: after chunk c, exactly c×CHUNK lines
    // were already on disk — the first three observations happen while
    // the job is far from done.
    let obs = observed.lock().unwrap().clone();
    let expected: Vec<(usize, usize)> = (1..=N_LIGANDS / CHUNK).map(|c| (c, c * CHUNK)).collect();
    assert_eq!(obs, expected, "per-chunk JSONL availability");

    // Final files: one line per ligand, every index present.
    for path in [&jsonl_a, &jsonl_b] {
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.lines().count(), N_LIGANDS);
        for i in 0..N_LIGANDS {
            assert!(
                text.contains(&format!("\"index\":{i},")),
                "index {i} missing from {}",
                path.display()
            );
        }
    }

    // Both rankings must match the sequential reference exactly.
    let reference = reference_top();
    for outcome in [&oa, &ob] {
        assert_eq!(outcome.top.len(), TOP_K);
        for (got, want) in outcome.top.iter().zip(&reference) {
            assert_eq!((got.index, &got.name, got.score), (want.0, &want.1, want.2));
        }
    }

    service.shutdown();
    std::fs::remove_file(&jsonl_a).ok();
    std::fs::remove_file(&jsonl_b).ok();
}

#[test]
fn cancelled_job_resumes_from_its_checkpoint() {
    let service = ScreenService::start(ServeConfig {
        total_threads: 2,
        job_slots: 1,
        queue_capacity: 4,
        cache_capacity: 2,
    });
    let jsonl = tmp("resume.jsonl");
    let ckpt = tmp("resume.ckpt");
    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_file(&ckpt).ok();

    // Kill the job from its own progress callback after the second
    // chunk: deterministic, and the chunk just completed is already
    // flushed to both sinks.
    let mut first = spec("resumable");
    first.jsonl = Some(jsonl.clone());
    first.checkpoint = Some(ckpt.clone());
    first.progress = Some(Arc::new(|p: &mudock_serve::ChunkProgress<'_>| {
        if p.chunks_done == 2 {
            p.cancel();
        }
    }));

    let handle = service.submit(first).unwrap();
    let killed = handle.wait();
    assert_eq!(killed.state, JobState::Cancelled);
    assert_eq!(killed.chunks_done, 2);
    assert_eq!(killed.ligands_done, 2 * CHUNK);
    assert_eq!(killed.replayed_chunks, 0);
    assert_eq!(jsonl_lines(&jsonl), 2 * CHUNK);

    // Resubmit the same job: the two completed chunks replay from the
    // checkpoint, the rest dock live, and the final ranking is
    // identical to an uninterrupted sequential run.
    let mut second = spec("resumable");
    second.jsonl = Some(jsonl.clone());
    second.checkpoint = Some(ckpt.clone());
    let resumed = service.submit(second).unwrap().wait();

    assert_eq!(resumed.state, JobState::Completed);
    assert_eq!(resumed.replayed_chunks, 2);
    assert_eq!(resumed.chunks_done, N_LIGANDS / CHUNK);
    assert_eq!(resumed.ligands_done, N_LIGANDS);
    assert!(
        resumed.grid_cache_hit,
        "the receptor grid must still be cached"
    );
    assert_eq!(
        jsonl_lines(&jsonl),
        N_LIGANDS,
        "resume appends, never duplicates"
    );

    let reference = reference_top();
    assert_eq!(resumed.top.len(), TOP_K);
    for (got, want) in resumed.top.iter().zip(&reference) {
        assert_eq!((got.index, &got.name, got.score), (want.0, &want.1, want.2));
    }

    // Across both runs every ligand was docked live exactly once: the
    // first run's 12 plus the resume's remaining 12.
    assert_eq!(service.stats().ligands_docked, N_LIGANDS as u64);

    service.shutdown();
    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn queue_applies_backpressure_and_priority_order() {
    let service = ScreenService::start(ServeConfig {
        total_threads: 1,
        job_slots: 1,
        queue_capacity: 2,
        cache_capacity: 2,
    });

    let completion_order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let record = |name: &str| {
        let order = Arc::clone(&completion_order);
        let name = name.to_string();
        Arc::new(move |_: &mudock_serve::ChunkProgress<'_>| {
            order.lock().unwrap().push(name.clone());
        })
    };

    // Occupy the single executor: the blocker parks in its progress
    // callback until released, holding the job slot.
    let release = Arc::new(AtomicBool::new(false));
    let gate = {
        let release = Arc::clone(&release);
        let order = Arc::clone(&completion_order);
        Arc::new(move |_: &mudock_serve::ChunkProgress<'_>| {
            order.lock().unwrap().push("blocker".into());
            while !release.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };
    let small = |name: &str| JobSpec {
        ligands: LigandSource::synth(SEED, 2),
        chunk_size: 4,
        ..spec(name)
    };
    let mut blocker = small("blocker");
    blocker.progress = Some(gate);
    let blocker_handle = service.submit(blocker).unwrap();
    while blocker_handle.chunks_done() < 1 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Executor busy, queue empty: two submissions fit, the third is
    // refused — backpressure instead of unbounded growth.
    let mut low = small("low");
    low.priority = Priority::Low;
    low.progress = Some(record("low"));
    let mut high = small("high");
    high.priority = Priority::High;
    high.progress = Some(record("high"));
    let low_handle = service.submit(low).unwrap();
    let high_handle = service.submit(high).unwrap();
    let overflow = service.try_submit(small("overflow"));
    assert_eq!(overflow.unwrap_err(), SubmitError::Full);

    release.store(true, Ordering::SeqCst);
    assert_eq!(blocker_handle.wait().state, JobState::Completed);
    assert_eq!(high_handle.wait().state, JobState::Completed);
    assert_eq!(low_handle.wait().state, JobState::Completed);

    // The high-priority job must have run before the earlier-submitted
    // low-priority one.
    assert_eq!(
        *completion_order.lock().unwrap(),
        vec!["blocker", "high", "low"]
    );

    service.shutdown();
}
