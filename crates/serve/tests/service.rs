//! End-to-end service tests: concurrent jobs sharing a grid cache,
//! per-job SIMD pinning with per-level cache entries, stop-policy early
//! termination, incremental JSONL streaming, checkpoint resume (also
//! across a chunk-policy change), and queue backpressure — each ranking
//! checked against a sequential `mudock_core` reference run.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use mudock_core::{
    screen_campaign, BackendPolicy, Campaign, CampaignSpec, ChunkPolicy, StopPolicy,
};
use mudock_grids::{GridBuilder, GridDims};
use mudock_mol::{Molecule, Vec3};
use mudock_molio::{mediate_like_set, synthetic_receptor};
use mudock_serve::{
    JobSpec, JobState, LigandSource, Priority, ScreenService, ServeConfig, SubmitError,
};
use mudock_simd::SimdLevel;

const SEED: u64 = 42;
const N_LIGANDS: usize = 24;
const CHUNK: usize = 6;
const TOP_K: usize = 5;

fn receptor() -> Arc<Molecule> {
    Arc::new(synthetic_receptor(7, 120, 8.0))
}

fn dims() -> GridDims {
    GridDims::centered(Vec3::ZERO, 10.0, 0.7)
}

fn campaign(name: &str) -> CampaignSpec {
    Campaign::builder()
        .name(name)
        .population(10)
        .generations(5)
        .seed(SEED)
        .search_radius(3.5)
        .top_k(TOP_K)
        .chunk(ChunkPolicy::Fixed(CHUNK))
        .grid_dims(dims())
        .build()
        .expect("the test campaign is valid")
}

fn spec(name: &str) -> JobSpec {
    JobSpec {
        receptor: receptor(),
        ligands: LigandSource::synth(SEED, N_LIGANDS),
        ..JobSpec::from(campaign(name))
    }
}

/// `(index, name, score)` of the reference ranking: a one-shot
/// sequential `core::screen_campaign` over the materialized batch,
/// consuming the *same* `CampaignSpec` the service jobs run from.
fn reference_top_for(campaign: &CampaignSpec) -> Vec<(usize, String, f32)> {
    let rec = receptor();
    let grids = GridBuilder::new(&rec, dims()).build_simd(campaign.grid_level());
    let ligands = mediate_like_set(SEED, N_LIGANDS);
    let full = CampaignSpec {
        stop: StopPolicy::Complete,
        ..campaign.clone()
    };
    let summary = screen_campaign(&grids, &ligands, &full, 1);
    summary
        .top_k(TOP_K)
        .into_iter()
        .map(|i| {
            (
                i,
                summary.results[i].name.clone(),
                summary.results[i].best_score.unwrap(),
            )
        })
        .collect()
}

fn reference_top() -> Vec<(usize, String, f32)> {
    reference_top_for(&campaign("reference"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mudock-serve-test-{}-{name}", std::process::id()))
}

fn jsonl_lines(path: &PathBuf) -> usize {
    std::fs::read_to_string(path)
        .map(|t| t.lines().count())
        .unwrap_or(0)
}

#[test]
fn concurrent_jobs_share_the_grid_cache_and_stream_results() {
    let service = ScreenService::start(ServeConfig {
        total_threads: 2,
        job_slots: 2,
        queue_capacity: 8,
        cache_capacity: 2,
        ..ServeConfig::default()
    });

    let jsonl_a = tmp("concurrent-a.jsonl");
    let jsonl_b = tmp("concurrent-b.jsonl");
    std::fs::remove_file(&jsonl_a).ok();
    std::fs::remove_file(&jsonl_b).ok();

    // Job A observes its own JSONL file at every chunk boundary: the
    // sink flushes *before* the progress callback runs, so the counts
    // are deterministic.
    let observed: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let observer = {
        let observed = Arc::clone(&observed);
        let path = jsonl_a.clone();
        Arc::new(move |p: &mudock_serve::ChunkProgress<'_>| {
            observed
                .lock()
                .unwrap()
                .push((p.chunks_done, jsonl_lines(&path)));
        })
    };

    let mut spec_a = spec("job-a");
    spec_a.jsonl = Some(jsonl_a.clone());
    spec_a.progress = Some(observer);
    let mut spec_b = spec("job-b");
    spec_b.jsonl = Some(jsonl_b.clone());

    let a = service.submit(spec_a).unwrap();
    let b = service.submit(spec_b).unwrap();
    let oa = a.wait();
    let ob = b.wait();

    assert_eq!(oa.state, JobState::Completed);
    assert_eq!(ob.state, JobState::Completed);
    assert_eq!(oa.ligands_done, N_LIGANDS);
    assert_eq!(ob.ligands_done, N_LIGANDS);

    // Same receptor + dims → one build, one hit, whichever job got there
    // second (a build in flight still counts: it ran once).
    assert!(
        oa.grid_cache_hit ^ ob.grid_cache_hit,
        "exactly one of the two jobs must hit the cache (a={}, b={})",
        oa.grid_cache_hit,
        ob.grid_cache_hit
    );
    let stats = service.stats();
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.entries, 1);
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.ligands_docked, 2 * N_LIGANDS as u64);

    // JSONL streamed incrementally: after chunk c, exactly c×CHUNK lines
    // were already on disk — the first three observations happen while
    // the job is far from done.
    let obs = observed.lock().unwrap().clone();
    let expected: Vec<(usize, usize)> = (1..=N_LIGANDS / CHUNK).map(|c| (c, c * CHUNK)).collect();
    assert_eq!(obs, expected, "per-chunk JSONL availability");

    // Final files: one line per ligand, every index present.
    for path in [&jsonl_a, &jsonl_b] {
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.lines().count(), N_LIGANDS);
        for i in 0..N_LIGANDS {
            assert!(
                text.contains(&format!("\"index\":{i},")),
                "index {i} missing from {}",
                path.display()
            );
        }
    }

    // Both rankings must match the sequential reference exactly.
    let reference = reference_top();
    for outcome in [&oa, &ob] {
        assert_eq!(outcome.top.len(), TOP_K);
        for (got, want) in outcome.top.iter().zip(&reference) {
            assert_eq!((got.index, &got.name, got.score), (want.0, &want.1, want.2));
        }
    }

    service.shutdown();
    std::fs::remove_file(&jsonl_a).ok();
    std::fs::remove_file(&jsonl_b).ok();
}

#[test]
fn cancelled_job_resumes_from_its_checkpoint() {
    let service = ScreenService::start(ServeConfig {
        total_threads: 2,
        job_slots: 1,
        queue_capacity: 4,
        cache_capacity: 2,
        ..ServeConfig::default()
    });
    let jsonl = tmp("resume.jsonl");
    let ckpt = tmp("resume.ckpt");
    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_file(&ckpt).ok();

    // Kill the job from its own progress callback after the second
    // chunk: deterministic, and the chunk just completed is already
    // flushed to both sinks.
    let mut first = spec("resumable");
    first.jsonl = Some(jsonl.clone());
    first.checkpoint = Some(ckpt.clone());
    first.progress = Some(Arc::new(|p: &mudock_serve::ChunkProgress<'_>| {
        if p.chunks_done == 2 {
            p.cancel();
        }
    }));

    let handle = service.submit(first).unwrap();
    let killed = handle.wait();
    assert_eq!(killed.state, JobState::Cancelled);
    assert_eq!(killed.chunks_done, 2);
    assert_eq!(killed.ligands_done, 2 * CHUNK);
    assert_eq!(killed.replayed_chunks, 0);
    assert_eq!(jsonl_lines(&jsonl), 2 * CHUNK);

    // Resubmit the same job under a *different* chunk policy: the two
    // completed chunks replay from the checkpoint (each record knows its
    // own size), the rest dock live in adaptively-sized chunks, and the
    // final ranking is still bit-identical to an uninterrupted
    // sequential run — per-ligand seeds are keyed on the global index,
    // never on chunk boundaries.
    let mut second = spec("resumable");
    second.campaign.chunk = ChunkPolicy::Adaptive {
        target: std::time::Duration::from_millis(25),
    };
    second.jsonl = Some(jsonl.clone());
    second.checkpoint = Some(ckpt.clone());
    let resumed = service.submit(second).unwrap().wait();

    assert_eq!(resumed.state, JobState::Completed);
    assert_eq!(resumed.replayed_chunks, 2);
    assert!(
        resumed.chunks_done >= 3,
        "two replayed chunks plus at least one live chunk"
    );
    assert_eq!(resumed.ligands_done, N_LIGANDS);
    assert!(
        resumed.grid_cache_hit,
        "the receptor grid must still be cached"
    );
    assert_eq!(
        jsonl_lines(&jsonl),
        N_LIGANDS,
        "resume appends, never duplicates"
    );

    let reference = reference_top();
    assert_eq!(resumed.top.len(), TOP_K);
    for (got, want) in resumed.top.iter().zip(&reference) {
        assert_eq!((got.index, &got.name, got.score), (want.0, &want.1, want.2));
    }

    // Across both runs every ligand was docked live exactly once: the
    // first run's 12 plus the resume's remaining 12.
    assert_eq!(service.stats().ligands_docked, N_LIGANDS as u64);

    service.shutdown();
    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_file(&ckpt).ok();
}

/// The acceptance scenario for per-job SIMD pinning: two concurrent
/// jobs pinned to *different* levels against the same receptor must get
/// distinct `(fingerprint, dims, level)` cache entries — neither job
/// reads grids built with the other's instruction set — while their
/// rankings agree across levels within fast-math tolerance.
#[test]
fn jobs_pinned_to_different_levels_get_distinct_grids_and_agreeing_rankings() {
    let levels = SimdLevel::available();
    if levels.len() < 2 {
        eprintln!("skipping: host offers only {levels:?}");
        return;
    }
    let (lo, hi) = (levels[0], *levels.last().unwrap());

    let service = ScreenService::start(ServeConfig {
        total_threads: 2,
        job_slots: 2,
        queue_capacity: 8,
        cache_capacity: 4,
        ..ServeConfig::default()
    });
    let submit = |level: SimdLevel| {
        let mut s = spec(&format!("pinned-{level}"));
        s.campaign.backend = BackendPolicy::Pinned(level);
        service.submit(s).unwrap()
    };
    let a = submit(lo);
    let b = submit(hi);
    let oa = a.wait();
    let ob = b.wait();

    assert_eq!(oa.state, JobState::Completed);
    assert_eq!(ob.state, JobState::Completed);

    // Distinct (fingerprint, level) entries: two builds, zero sharing.
    let stats = service.stats();
    assert_eq!(stats.cache.misses, 2, "each level builds its own grids");
    assert_eq!(stats.cache.hits, 0);
    assert_eq!(stats.cache.entries, 2);

    // Same campaign, different instruction sets: identical rankings
    // within fast-math tolerance.
    assert_eq!(oa.top.len(), ob.top.len());
    for (x, y) in oa.top.iter().zip(&ob.top) {
        assert_eq!(
            (x.index, &x.name),
            (y.index, &y.name),
            "{lo} and {hi} must rank the same ligands"
        );
        let tol = 5e-3 * x.score.abs().max(1.0);
        assert!(
            (x.score - y.score).abs() <= tol,
            "{}: {} vs {}",
            x.name,
            x.score,
            y.score
        );
    }

    // And each pinned job reproduces the core screen_campaign path run
    // from the very same spec — one workload description, two entry
    // points, bit-identical results.
    let mut pinned = campaign("core-twin");
    pinned.backend = BackendPolicy::Pinned(lo);
    for (got, want) in oa.top.iter().zip(&reference_top_for(&pinned)) {
        assert_eq!((got.index, &got.name, got.score), (want.0, &want.1, want.2));
    }

    service.shutdown();
}

/// The acceptance scenario for early termination: a `RankingStable`
/// campaign stops before exhausting its input, reports Completed +
/// stopped_early (via the ChunkProgress::cancel hook), and its ranking
/// is bit-identical to what `core::screen_campaign` produces for the
/// same spec — and to a full run over the same prefix of the batch.
#[test]
fn ranking_stable_policy_stops_the_job_early_with_a_consistent_ranking() {
    // A longer batch than the other tests use: the top-5 needs room to
    // go quiet for two consecutive chunks before the input runs out.
    const N_EARLY: usize = 60;
    let stop = StopPolicy::RankingStable {
        window: 2,
        epsilon: 0.0,
    };
    let mut early_campaign = campaign("early-stop");
    early_campaign.chunk = ChunkPolicy::Fixed(4);
    early_campaign.stop = stop;

    let service = ScreenService::start(ServeConfig {
        total_threads: 2,
        job_slots: 1,
        queue_capacity: 4,
        cache_capacity: 2,
        ..ServeConfig::default()
    });
    let mut s = JobSpec {
        receptor: receptor(),
        ligands: LigandSource::synth(SEED, N_EARLY),
        ..JobSpec::from(early_campaign.clone())
    };
    s.progress = None;
    let outcome = service.submit(s).unwrap().wait();
    service.shutdown();

    assert_eq!(
        outcome.state,
        JobState::Completed,
        "a policy stop is a success, not a cancellation"
    );
    assert!(outcome.stopped_early, "the ranking must stabilize early");
    assert!(
        outcome.ligands_done < N_EARLY,
        "stopped after {} of {N_EARLY} ligands",
        outcome.ligands_done
    );

    // The core path consuming the same spec stops at the same place
    // with the same ranking.
    let rec = receptor();
    let grids = GridBuilder::new(&rec, dims()).build_simd(early_campaign.grid_level());
    let ligands = mediate_like_set(SEED, N_EARLY);
    let core_summary = screen_campaign(&grids, &ligands, &early_campaign, 1);
    assert_eq!(core_summary.results.len(), outcome.ligands_done);
    let core_top = core_summary.top_k(TOP_K);
    assert_eq!(outcome.top.len(), core_top.len());
    for (got, &want) in outcome.top.iter().zip(&core_top) {
        assert_eq!(got.index, want);
        assert_eq!(got.score, core_summary.results[want].best_score.unwrap());
    }

    // Early termination discards nothing: the ranking equals a full
    // (non-stopping) run over the prefix that was actually docked.
    let full = CampaignSpec {
        stop: StopPolicy::Complete,
        ..early_campaign
    };
    let prefix = screen_campaign(&grids, &ligands[..outcome.ligands_done], &full, 1);
    let prefix_top = prefix.top_k(TOP_K);
    for (got, &want) in outcome.top.iter().zip(&prefix_top) {
        assert_eq!(got.index, want);
        assert_eq!(got.score, prefix.results[want].best_score.unwrap());
    }
}

#[test]
fn queue_applies_backpressure_and_priority_order() {
    let service = ScreenService::start(ServeConfig {
        total_threads: 1,
        job_slots: 1,
        queue_capacity: 2,
        cache_capacity: 2,
        ..ServeConfig::default()
    });

    let completion_order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let record = |name: &str| {
        let order = Arc::clone(&completion_order);
        let name = name.to_string();
        Arc::new(move |_: &mudock_serve::ChunkProgress<'_>| {
            order.lock().unwrap().push(name.clone());
        })
    };

    // Occupy the single executor: the blocker parks in its progress
    // callback until released, holding the job slot.
    let release = Arc::new(AtomicBool::new(false));
    let gate = {
        let release = Arc::clone(&release);
        let order = Arc::clone(&completion_order);
        Arc::new(move |_: &mudock_serve::ChunkProgress<'_>| {
            order.lock().unwrap().push("blocker".into());
            while !release.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };
    let small = |name: &str| {
        let mut s = spec(name);
        s.ligands = LigandSource::synth(SEED, 2);
        s.campaign.chunk = ChunkPolicy::Fixed(4);
        s
    };
    let mut blocker = small("blocker");
    blocker.progress = Some(gate);
    let blocker_handle = service.submit(blocker).unwrap();
    while blocker_handle.chunks_done() < 1 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Executor busy, queue empty: two submissions fit, the third is
    // refused — backpressure instead of unbounded growth.
    let mut low = small("low");
    low.priority = Priority::Low;
    low.progress = Some(record("low"));
    let mut high = small("high");
    high.priority = Priority::High;
    high.progress = Some(record("high"));
    let low_handle = service.submit(low).unwrap();
    let high_handle = service.submit(high).unwrap();
    let overflow = service.try_submit(small("overflow"));
    assert_eq!(overflow.unwrap_err(), SubmitError::Full);

    release.store(true, Ordering::SeqCst);
    assert_eq!(blocker_handle.wait().state, JobState::Completed);
    assert_eq!(high_handle.wait().state, JobState::Completed);
    assert_eq!(low_handle.wait().state, JobState::Completed);

    // The high-priority job must have run before the earlier-submitted
    // low-priority one.
    assert_eq!(
        *completion_order.lock().unwrap(),
        vec!["blocker", "high", "low"]
    );

    service.shutdown();
}
