//! Chunk-split invariance of the resumable wire parser.
//!
//! [`wire::parse`] is defined as "feed everything to a
//! [`PushParser`](wire::PushParser), then `finish`", so the property
//! that actually needs guarding is that the *split points don't
//! matter*: feeding a document byte-at-a-time, or in arbitrary random
//! chunks, must produce exactly the result of the one-shot parse — the
//! same [`Json`] tree for valid input, and the same [`WireError`]
//! *including the byte offset* for malformed input. The malformed half
//! matters most: an error discovered mid-chunk must be reported at the
//! same offset as when the whole document was visible at once.

use mudock_serve::wire::{self, Json, Num, WireError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

// --------------------------------------------------------------------
// Document generation (hand-rolled: the tree is recursive, which the
// offline proptest shim's combinators don't model).
// --------------------------------------------------------------------

/// Strings exercising every escape path: plain ASCII, mandatory
/// escapes, `\u` hex (BMP + surrogate pairs), and multi-byte UTF-8.
fn gen_string(rng: &mut StdRng) -> String {
    let len = rng.random_range(0usize..12);
    let mut s = String::new();
    for _ in 0..len {
        match rng.random_range(0u32..10) {
            0 => s.push('"'),
            1 => s.push('\\'),
            2 => s.push('\n'),
            3 => s.push('\t'),
            4 => s.push('\u{1F}'), // control char → \u escape on encode
            5 => s.push('é'),      // 2-byte UTF-8
            6 => s.push('✓'),      // 3-byte UTF-8
            7 => s.push('🜚'),      // 4-byte UTF-8 (surrogate pair in \u)
            _ => s.push((b'a' + (rng.random_range(0u32..26) as u8)) as char),
        }
    }
    s
}

fn gen_num(rng: &mut StdRng) -> Num {
    match rng.random_range(0u32..4) {
        0 => Num::from_u64(rng.random::<u64>()),
        1 => Num::from_f64(-(rng.random::<f64>()) * 1e9),
        2 => Num::from_f32(rng.random::<f32>() * 1e-3),
        _ => Num::from_usize(rng.random_range(0usize..1000)),
    }
}

fn gen_json(rng: &mut StdRng, depth: usize) -> Json {
    let pick = if depth == 0 {
        rng.random_range(0u32..4) // leaves only
    } else {
        rng.random_range(0u32..6)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.random::<bool>()),
        2 => Json::Num(gen_num(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.random_range(0usize..5);
            Json::Arr((0..n).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.random_range(0usize..5);
            Json::Obj(
                (0..n)
                    .map(|_| (gen_string(rng), gen_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// Random insignificant whitespace around the document (the parser
/// must treat it as part of the byte stream for offset purposes).
fn pad(rng: &mut StdRng, text: String) -> String {
    let ws = [" ", "\t", "\n", "\r\n", ""];
    let pre = ws[rng.random_range(0usize..ws.len())];
    let post = ws[rng.random_range(0usize..ws.len())];
    format!("{pre}{text}{post}")
}

/// Corrupt an encoded document: flip, insert, delete, or truncate at a
/// random byte. Most mutations produce malformed documents; some stay
/// valid (e.g. deleting a digit) — both are fine, parity must hold
/// either way.
fn mutate(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        bytes.push(b'{');
        return;
    }
    let at = rng.random_range(0usize..bytes.len());
    match rng.random_range(0u32..4) {
        0 => bytes[at] = rng.random_range(0u32..=255) as u8,
        1 => bytes.insert(at, rng.random_range(0u32..=255) as u8),
        2 => {
            bytes.remove(at);
        }
        _ => bytes.truncate(at),
    }
}

// --------------------------------------------------------------------
// The parsers under comparison
// --------------------------------------------------------------------

/// Push the bytes through a fresh parser in the given chunks.
fn parse_in_chunks(bytes: &[u8], cuts: &[usize]) -> Result<Json, WireError> {
    let mut parser = wire::PushParser::new();
    let mut start = 0;
    for &cut in cuts {
        parser.feed(&bytes[start..cut])?;
        start = cut;
    }
    parser.feed(&bytes[start..])?;
    parser.finish()
}

/// Random sorted cut points (possibly duplicated → empty chunks, which
/// must also be harmless).
fn random_cuts(rng: &mut StdRng, len: usize) -> Vec<usize> {
    let n = rng.random_range(0usize..8);
    let mut cuts: Vec<usize> = (0..n).map(|_| rng.random_range(0usize..=len)).collect();
    cuts.sort_unstable();
    cuts
}

/// Assert every split of `bytes` agrees with `expected`.
fn assert_split_invariant(
    rng: &mut StdRng,
    bytes: &[u8],
    expected: &Result<Json, WireError>,
) -> Result<(), TestCaseError> {
    // Byte-at-a-time: the worst case — every state machine transition
    // crosses a feed boundary.
    let one_by_one: Vec<usize> = (1..bytes.len()).collect();
    let got = parse_in_chunks(bytes, &one_by_one);
    prop_assert_eq!(&got, expected, "byte-at-a-time parse diverged");
    // A handful of random chunkings.
    for _ in 0..4 {
        let cuts = random_cuts(rng, bytes.len());
        let got = parse_in_chunks(bytes, &cuts);
        prop_assert_eq!(&got, expected, "chunked parse diverged at {:?}", cuts);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn valid_documents_parse_identically_under_any_split(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = gen_json(&mut rng, 4);
        let text = pad(&mut rng, doc.encode());
        let expected = wire::parse(&text);
        // Sanity: encode → parse must succeed and round-trip.
        prop_assert_eq!(expected.as_ref().ok(), Some(&doc), "encode/parse broke: {}", text);
        assert_split_invariant(&mut rng, text.as_bytes(), &expected)?;
    }

    #[test]
    fn mutated_documents_fail_identically_under_any_split(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = gen_json(&mut rng, 3);
        let mut bytes = pad(&mut rng, doc.encode()).into_bytes();
        for _ in 0..rng.random_range(1usize..4) {
            mutate(&mut rng, &mut bytes);
        }
        // The one-shot reference is feed-all + finish, which is what
        // `wire::parse` does on strings; raw bytes also cover the
        // invalid-UTF-8 rejection paths `&str` can never reach.
        let expected = parse_in_chunks(&bytes, &[]);
        if let Ok(text) = std::str::from_utf8(&bytes) {
            prop_assert_eq!(&wire::parse(text), &expected, "parse() != feed-all");
        }
        assert_split_invariant(&mut rng, &bytes, &expected)?;
    }

    #[test]
    fn errors_are_sticky_across_further_feeds(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = gen_json(&mut rng, 2).encode().into_bytes();
        for _ in 0..3 {
            mutate(&mut rng, &mut bytes);
        }
        let mut parser = wire::PushParser::new();
        let Err(first) = parser.feed(&bytes) else {
            return Ok(()); // mutations left a parseable prefix — fine
        };
        // Once latched, no continuation may "heal" or move the error.
        prop_assert_eq!(parser.feed(b"true"), Err(first.clone()), "error not sticky");
        prop_assert_eq!(parser.feed(b"  "), Err(first.clone()), "error not sticky");
        prop_assert_eq!(parser.finish(), Err(first), "finish() lost the sticky error");
    }
}
