//! Warm-restart acceptance tests at the service level: a node killed
//! and restarted on the same `--spill-dir` must serve its first job on
//! a previously-cached receptor from the restored spill tier — zero
//! grid rebuilds, rankings bit-identical to the pre-kill run — and,
//! with prefetch enabled, reload the next queued receptor's grids
//! before the demand lookup asks for them.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mudock_core::{Campaign, CampaignSpec, ChunkPolicy};
use mudock_grids::GridDims;
use mudock_mol::{Molecule, Vec3};
use mudock_molio::synthetic_receptor;
use mudock_serve::{
    JobSpec, JobState, LigandSource, RankedLigand, ScreenService, ServeConfig, SpillConfig,
};

const SEED: u64 = 42;
const N_LIGANDS: usize = 8;
const TOP_K: usize = 3;

fn receptor(seed: u64) -> Arc<Molecule> {
    Arc::new(synthetic_receptor(seed, 100, 8.0))
}

fn campaign(name: &str) -> CampaignSpec {
    Campaign::builder()
        .name(name)
        .population(8)
        .generations(4)
        .seed(SEED)
        .search_radius(3.5)
        .top_k(TOP_K)
        .chunk(ChunkPolicy::Fixed(4))
        .grid_dims(GridDims::centered(Vec3::ZERO, 8.0, 0.8))
        .build()
        .expect("the test campaign is valid")
}

fn spec(name: &str, receptor_seed: u64) -> JobSpec {
    JobSpec {
        receptor: receptor(receptor_seed),
        ligands: LigandSource::synth(SEED, N_LIGANDS),
        ..JobSpec::from(campaign(name))
    }
}

fn config(spill_dir: &PathBuf) -> ServeConfig {
    ServeConfig {
        total_threads: 2,
        job_slots: 1,
        queue_capacity: 8,
        cache_capacity: 1,
        spill: Some(SpillConfig::new(spill_dir)),
        ..ServeConfig::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mudock-warm-restart-{}-{name}", std::process::id()))
}

fn assert_same_ranking(got: &[RankedLigand], want: &[RankedLigand]) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        // Bit-exact score equality: the reloaded grids are the spilled
        // bytes, so nothing may drift.
        assert_eq!((g.index, &g.name, g.score), (w.index, &w.name, w.score));
    }
}

/// The tentpole acceptance check: kill a node whose cache spilled a
/// receptor's grids, restart it on the same spill directory, and the
/// first job on that receptor runs with *zero* grid rebuilds (its one
/// miss is a reload) and a ranking bit-identical to the pre-kill run.
#[test]
fn a_restarted_node_reuses_its_spill_dir_without_rebuilding() {
    let dir = tmp("reuse");
    std::fs::remove_dir_all(&dir).ok();

    // First life: receptor A builds, then receptor B evicts it into
    // the spill tier.
    let first = ScreenService::start(config(&dir));
    let oa = first.submit(spec("a-1", 7)).unwrap().wait();
    let ob = first.submit(spec("b-1", 8)).unwrap().wait();
    assert_eq!(oa.state, JobState::Completed);
    assert_eq!(ob.state, JobState::Completed);
    let s1 = first.stats();
    assert_eq!((s1.cache.misses, s1.cache.spills), (2, 1));
    // No clean handover: drop the service as a crash stand-in (the
    // spill tier is already durable — files land at eviction time).
    first.shutdown();

    // Second life, same directory: the rescan restores receptor A's
    // grids and the job reloads them instead of rebuilding.
    let second = ScreenService::start(config(&dir));
    let oa2 = second.submit(spec("a-2", 7)).unwrap().wait();
    assert_eq!(oa2.state, JobState::Completed);
    let s2 = second.stats();
    assert_eq!(s2.cache.quarantined, 0);
    assert_eq!(
        (s2.cache.misses, s2.cache.reloads),
        (1, 1),
        "the only miss must be served from the restored spill tier — zero rebuilds"
    );
    assert_same_ranking(&oa2.top, &oa.top);
    second.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// With `cache_prefetch` on, a warm-restarted node acts on the
/// router's next-job hint: while one job docks, the next queued
/// receptor's spilled grids are reloaded in the background, and the
/// prefetch counter proves it happened ahead of demand.
#[test]
fn prefetch_reloads_the_next_queued_receptors_grids() {
    let dir = tmp("prefetch");
    std::fs::remove_dir_all(&dir).ok();

    // Seed the spill tier with both receptors: A builds, B evicts it
    // (spilling A), A reloads and evicts B (spilling B).
    let first = ScreenService::start(config(&dir));
    let oa = first.submit(spec("a-1", 7)).unwrap().wait();
    first.submit(spec("b-1", 8)).unwrap().wait();
    let oa_again = first.submit(spec("a-2", 7)).unwrap().wait();
    assert_same_ranking(&oa_again.top, &oa.top);
    let s1 = first.stats();
    assert_eq!((s1.cache.spills, s1.cache.reloads), (2, 1));
    first.shutdown();

    // Restart with prefetch. A blocker job on receptor A parks in its
    // progress callback so B and A can queue up behind it; when B is
    // popped the router's hint names A, and B's worker prefetches A's
    // grids while B is still docking.
    let second = ScreenService::start(ServeConfig {
        cache_prefetch: true,
        ..config(&dir)
    });
    let release = Arc::new(AtomicBool::new(false));
    let gate = {
        let release = Arc::clone(&release);
        Arc::new(move |_: &mudock_serve::ChunkProgress<'_>| {
            while !release.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };
    let mut blocker = spec("blocker", 7);
    blocker.progress = Some(gate);
    let blocker_handle = second.submit(blocker).unwrap();
    while blocker_handle.chunks_done() < 1 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let b_handle = second.submit(spec("b-2", 8)).unwrap();
    let a_handle = second.submit(spec("a-3", 7)).unwrap();
    release.store(true, Ordering::SeqCst);

    assert_eq!(blocker_handle.wait().state, JobState::Completed);
    assert_eq!(b_handle.wait().state, JobState::Completed);
    let oa3 = a_handle.wait();
    assert_eq!(oa3.state, JobState::Completed);
    assert_same_ranking(&oa3.top, &oa.top);

    // The prefetch runs on a background thread; give the counter a
    // moment after the jobs drain.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let s2 = second.stats();
        if s2.cache.prefetches >= 1 {
            // Everything this life served came from disk or the
            // prefetcher — the warm tier means never rebuilding.
            // (Prefetch reloads are not demand misses, so demand
            // reloads are `reloads - prefetches`.)
            assert_eq!(
                s2.cache.misses,
                s2.cache.reloads - s2.cache.prefetches,
                "zero rebuilds"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no prefetch recorded: {:?}",
            s2.cache
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    second.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
