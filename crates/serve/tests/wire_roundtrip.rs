//! Property tests on the wire codec: every [`CampaignSpec`] the builder
//! accepts must survive `CampaignSpec → JSON text → CampaignSpec`
//! unchanged — across all [`StopPolicy`]/[`ChunkPolicy`]/
//! [`BackendPolicy`] variants — and malformed input must be rejected
//! with the right [`WireError`] class (never a panic, never a silently
//! defaulted field).

use std::time::Duration;

use mudock_core::{
    Backend, BackendPolicy, Campaign, CampaignSpec, ChunkPolicy, GaParams, ShardPolicy,
    SolisWetsParams, StopPolicy, MAX_CHUNK, MAX_SHARD_WEIGHT,
};
use mudock_grids::GridDims;
use mudock_mol::Vec3;
use mudock_serve::wire::{self, WireError};
use mudock_simd::SimdLevel;
use proptest::prelude::*;

fn backend_policy() -> impl Strategy<Value = BackendPolicy> {
    // Only host-supported pins: the builder (rightly) refuses the rest,
    // and round-tripping starts from a *valid* spec.
    let mut options = vec![
        BackendPolicy::Detect,
        BackendPolicy::Fixed(Backend::Reference),
        BackendPolicy::Fixed(Backend::AutoVec),
    ];
    for l in SimdLevel::available() {
        options.push(BackendPolicy::Fixed(Backend::Explicit(l)));
        options.push(BackendPolicy::Pinned(l));
    }
    prop::sample::select(options)
}

fn stop_policy() -> impl Strategy<Value = StopPolicy> {
    prop_oneof!(
        (0u64..2).prop_map(|_| StopPolicy::Complete),
        (1u64..u64::MAX).prop_map(StopPolicy::MaxEvaluations),
        (1u64..300_000_000_000u64).prop_map(|ns| StopPolicy::Deadline(Duration::from_nanos(ns))),
        (1usize..64, 0.0f32..4.0)
            .prop_map(|(window, epsilon)| StopPolicy::RankingStable { window, epsilon }),
    )
}

fn chunk_policy() -> impl Strategy<Value = ChunkPolicy> {
    prop_oneof!(
        (1usize..=MAX_CHUNK).prop_map(ChunkPolicy::Fixed),
        (1u64..120_000_000_000u64).prop_map(|ns| ChunkPolicy::Adaptive {
            target: Duration::from_nanos(ns),
        }),
    )
}

fn shard_policy() -> impl Strategy<Value = ShardPolicy> {
    prop_oneof!(
        (0u64..2).prop_map(|_| ShardPolicy::FairShare),
        (0u64..2).prop_map(|_| ShardPolicy::SingleQueue),
        (f32::MIN_POSITIVE..MAX_SHARD_WEIGHT).prop_map(ShardPolicy::Weighted),
    )
}

fn ga_params() -> impl Strategy<Value = GaParams> {
    (
        (2usize..500, 1usize..2000, 1usize..8),
        (0.0f32..1.0, 0.0f32..1.0),
        (0.01f32..2.0, 0.01f32..1.0, 0.01f32..2.0),
        0usize..2,
    )
        .prop_map(
            |((population, generations, tournament), (crossover, mutation), sigmas, elitism)| {
                GaParams {
                    population,
                    generations,
                    tournament,
                    crossover_rate: crossover,
                    mutation_rate: mutation,
                    sigma_translation: sigmas.0,
                    sigma_rotation: sigmas.1,
                    sigma_torsion: sigmas.2,
                    elitism: elitism.min(population - 1),
                }
            },
        )
}

fn campaign_spec() -> impl Strategy<Value = CampaignSpec> {
    (
        (0u64..u64::MAX, 1usize..200),
        ga_params(),
        backend_policy(),
        stop_policy(),
        chunk_policy(),
        shard_policy(),
        (0u64..4, 0.5f32..20.0, 0u64..4, 5.0f32..14.0),
    )
        .prop_map(
            |(
                (seed, top_k),
                ga,
                backend,
                stop,
                chunk,
                shard,
                (with_radius, radius, with_dims, extent),
            )| {
                let mut b = Campaign::builder()
                    .name(format!("prop-{seed:x}"))
                    .seed(seed)
                    .top_k(top_k)
                    .ga(ga)
                    .backend(backend)
                    .stop(stop)
                    .chunk(chunk)
                    .shard(shard);
                if with_radius == 0 {
                    b = b.search_radius(radius);
                }
                if with_dims == 0 {
                    b = b.grid_dims(GridDims::centered(
                        Vec3::new(extent - 9.0, 0.25 * extent, -extent),
                        extent,
                        0.375 + extent / 40.0,
                    ));
                }
                if with_dims == 1 {
                    b = b.local_search(SolisWetsParams {
                        max_evals: 50 + top_k,
                        fraction: (radius / 20.0).min(1.0),
                        ..SolisWetsParams::default()
                    });
                }
                b.build().expect("generated campaigns are valid")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn campaign_specs_round_trip_exactly(spec in campaign_spec()) {
        let text = wire::campaign_to_json(&spec).encode();
        let parsed = wire::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{text}: {e}")))?;
        let back = wire::campaign_from_json(&parsed)
            .map_err(|e| TestCaseError::fail(format!("{text}: {e}")))?;
        // CampaignSpec is PartialEq over every field, so this covers
        // the GA shape, all three policies (incl. exact Duration nanos
        // and f32 epsilon bits), seed, top-k, radius, and dims.
        prop_assert_eq!(&back, &spec, "wire text: {}", text);
        // And a second trip is a fixed point (no drift on re-encode).
        let text2 = wire::campaign_to_json(&back).encode();
        prop_assert_eq!(text2, text);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(bytes in prop::collection::vec(0u32..128, 0..200)) {
        let text: String = bytes.iter().filter_map(|&b| char::from_u32(b)).collect();
        // Must return, never panic; success is fine (the text may
        // happen to be valid JSON).
        let _ = wire::parse(&text);
    }

    #[test]
    fn json_escape_output_always_reparses(bytes in prop::collection::vec(0u32..0x11_0000, 0..60)) {
        let s: String = bytes.iter().filter_map(|&b| char::from_u32(b)).collect();
        let encoded = wire::Json::str(s.clone()).encode();
        let back = wire::parse(&encoded)
            .map_err(|e| TestCaseError::fail(format!("{encoded:?}: {e}")))?;
        prop_assert_eq!(back, wire::Json::Str(s));
    }
}

/// Malformed submissions must map onto the documented [`WireError`]
/// classes — and thereby the right HTTP status.
#[test]
fn malformed_inputs_map_to_the_right_wire_errors() {
    type Case = (&'static str, fn(&WireError) -> bool, u16);
    // (body, expected-class check, http status)
    let cases: Vec<Case> = vec![
        // Not JSON at all → Syntax → 400.
        ("{]", |e| matches!(e, WireError::Syntax { .. }), 400),
        ("", |e| matches!(e, WireError::Syntax { .. }), 400),
        // Structurally JSON, required members absent → Missing → 400.
        (
            "{}",
            |e| matches!(e, WireError::Missing { field: "campaign" }),
            400,
        ),
        (
            r#"{"campaign": {"name": "x"}}"#,
            |e| matches!(e, WireError::Missing { field: "receptor" }),
            400,
        ),
        // Wrong types / unknown variants → Invalid → 400.
        (
            r#"{"campaign": {"name": "x", "backend": {"pinned": "avx9000"}},
                "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                "ligands": {"synth": {"count": 2}}}"#,
            |e| matches!(e, WireError::Invalid { .. }),
            400,
        ),
        (
            r#"{"campaign": {"name": "x", "stop": {"surprise": 3}},
                "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                "ligands": {"synth": {"count": 2}}}"#,
            |e| matches!(e, WireError::Invalid { .. }),
            400,
        ),
        (
            r#"{"campaign": {"name": "x", "seed": -4},
                "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                "ligands": {"synth": {"count": 2}}}"#,
            |e| matches!(e, WireError::Invalid { .. }),
            400,
        ),
        // A huge exponent parses to f64 infinity (and 1e300 overflows
        // the f32 narrowing): both must be typed 400s, never an inf
        // smuggled into a GA sigma the builder does not re-validate.
        (
            r#"{"campaign": {"name": "x", "ga": {"sigma_translation": 1e999}},
                "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                "ligands": {"synth": {"count": 2}}}"#,
            |e| matches!(e, WireError::Invalid { .. }),
            400,
        ),
        (
            r#"{"campaign": {"name": "x", "ga": {"mutation_rate": 1e300}},
                "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                "ligands": {"synth": {"count": 2}}}"#,
            |e| matches!(e, WireError::Invalid { .. }),
            400,
        ),
        (
            r#"{"campaign": {"name": "x"}, "priority": "urgent",
                "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                "ligands": {"synth": {"count": 2}}}"#,
            |e| matches!(e, WireError::Invalid { .. }),
            400,
        ),
        // Valid wire shape, invalid campaign → Campaign → 422.
        (
            r#"{"campaign": {"name": "x", "top_k": 0},
                "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                "ligands": {"synth": {"count": 2}}}"#,
            |e| matches!(e, WireError::Campaign(_)),
            422,
        ),
        (
            r#"{"campaign": {"name": "x", "chunk": {"fixed": 0}},
                "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                "ligands": {"synth": {"count": 2}}}"#,
            |e| matches!(e, WireError::Campaign(_)),
            422,
        ),
        (
            r#"{"campaign": {"name": "x", "ga": {"population": 1}},
                "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                "ligands": {"synth": {"count": 2}}}"#,
            |e| matches!(e, WireError::Campaign(_)),
            422,
        ),
        // Unknown shard policy → Invalid → 400; a weight the builder
        // refuses (zero) → Campaign → 422.
        (
            r#"{"campaign": {"name": "x", "shard": "round_robin"},
                "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                "ligands": {"synth": {"count": 2}}}"#,
            |e| matches!(e, WireError::Invalid { .. }),
            400,
        ),
        (
            r#"{"campaign": {"name": "x", "shard": {"weighted": 0.0}},
                "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
                "ligands": {"synth": {"count": 2}}}"#,
            |e| matches!(e, WireError::Campaign(_)),
            422,
        ),
    ];
    for (body, check, status) in cases {
        let err = wire::parse(body)
            .and_then(|v| wire::submission_from_json(&v).map(|_| ()))
            .expect_err(body);
        assert!(check(&err), "{body}: unexpected error {err:?}");
        assert_eq!(err.http_status(), status, "{body}: {err:?}");
    }
}

/// The scatter window (`slice`) must round-trip exactly, stay optional,
/// and reject empty windows — a sub-job that docks nothing is always a
/// coordinator bug, never a request worth accepting.
#[test]
fn submission_slices_round_trip_and_reject_empty_windows() {
    use mudock_serve::ReceptorSource;
    use mudock_serve::{LigandSlice, LigandSource, Priority};

    let spec = Campaign::builder().name("sliced").build().unwrap();
    let receptor = ReceptorSource::Synth {
        seed: 1,
        atoms: 30,
        radius: 5.0,
    };
    let ligands = LigandSource::synth(9, 40);
    for slice in [
        None,
        Some(LigandSlice::new(0, 40)),
        Some(LigandSlice::new(13, 7)),
        Some(LigandSlice::new(usize::MAX - 1, 1)),
    ] {
        let text =
            wire::sliced_submission_to_json(&spec, &receptor, &ligands, slice, Priority::Normal)
                .expect("encodes")
                .encode();
        let back = wire::submission_from_json(&wire::parse(&text).unwrap()).expect(&text);
        assert_eq!(back.slice, slice, "wire text: {text}");
    }

    // take == 0 → Invalid → 400.
    let empty = r#"{"campaign": {"name": "x"},
        "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
        "ligands": {"synth": {"count": 2}},
        "slice": {"skip": 0, "take": 0}}"#;
    let err = wire::parse(empty)
        .and_then(|v| wire::submission_from_json(&v).map(|_| ()))
        .expect_err("an empty window must be rejected");
    assert!(matches!(err, WireError::Invalid { .. }), "{err:?}");
    assert_eq!(err.http_status(), 400);

    // A missing member of the slice object → Missing → 400.
    let half = r#"{"campaign": {"name": "x"},
        "receptor": {"synth": {"seed": 1, "atoms": 30, "radius": 5.0}},
        "ligands": {"synth": {"count": 2}},
        "slice": {"skip": 3}}"#;
    let err = wire::parse(half)
        .and_then(|v| wire::submission_from_json(&v).map(|_| ()))
        .expect_err("a half-window must be rejected");
    assert!(
        matches!(
            err,
            WireError::Missing {
                field: "slice.take"
            }
        ),
        "{err:?}"
    );
}
