//! End-to-end network tests: a real loopback TCP socket in front of a
//! running [`ScreenService`], driven through the blocking client —
//! submit → poll → results → cancel — with the served ranking checked
//! for exact equality against the in-process `screen_campaign` path
//! for the same spec and seed.

use std::sync::Arc;
use std::time::Duration;

use mudock_core::{screen_campaign, Campaign, CampaignSpec, ChunkPolicy, StopPolicy};
use mudock_grids::{GridBuilder, GridDims};
use mudock_mol::Vec3;
use mudock_molio::mediate_like_set;
use mudock_serve::net::client;
use mudock_serve::{
    JobState, LigandSource, NetConfig, NetServer, Priority, ReceptorSource, ScreenService,
    ServeConfig,
};

const SEED: u64 = 42;
const N_LIGANDS: usize = 24;
const TOP_K: usize = 5;
const RECEPTOR_SEED: u64 = 7;
const RECEPTOR_ATOMS: usize = 120;
const RECEPTOR_RADIUS: f32 = 8.0;

fn dims() -> GridDims {
    GridDims::centered(Vec3::ZERO, 10.0, 0.7)
}

fn campaign(name: &str) -> CampaignSpec {
    Campaign::builder()
        .name(name)
        .population(10)
        .generations(5)
        .seed(SEED)
        .search_radius(3.5)
        .top_k(TOP_K)
        .chunk(ChunkPolicy::Fixed(6))
        .grid_dims(dims())
        .build()
        .expect("the test campaign is valid")
}

fn receptor_source() -> ReceptorSource {
    ReceptorSource::Synth {
        seed: RECEPTOR_SEED,
        atoms: RECEPTOR_ATOMS,
        radius: RECEPTOR_RADIUS,
    }
}

/// `(index, name, score)` of the reference ranking: a one-shot
/// sequential `core::screen_campaign` over the materialized batch,
/// consuming the *same* `CampaignSpec` the network job ran from.
fn reference_top_for(spec: &CampaignSpec) -> Vec<(usize, String, f32)> {
    let rec = mudock_molio::synthetic_receptor(RECEPTOR_SEED, RECEPTOR_ATOMS, RECEPTOR_RADIUS);
    let grids = GridBuilder::new(&rec, dims()).build_simd(spec.grid_level());
    let ligands = mediate_like_set(SEED, N_LIGANDS);
    let full = CampaignSpec {
        stop: StopPolicy::Complete,
        ..spec.clone()
    };
    let summary = screen_campaign(&grids, &ligands, &full, 1);
    summary
        .top_k(TOP_K)
        .into_iter()
        .map(|i| {
            (
                i,
                summary.results[i].name.clone(),
                summary.results[i].best_score.unwrap(),
            )
        })
        .collect()
}

struct Harness {
    service: Arc<ScreenService>,
    server: NetServer,
    results_dir: std::path::PathBuf,
}

impl Harness {
    fn start(name: &str, cfg: ServeConfig) -> Harness {
        // 0 = the frontend's own default loop count.
        Harness::start_with_loops(name, cfg, 0)
    }

    fn start_with_loops(name: &str, cfg: ServeConfig, event_loops: usize) -> Harness {
        let results_dir =
            std::env::temp_dir().join(format!("mudock-net-e2e-{}-{name}", std::process::id()));
        let service = Arc::new(ScreenService::start(cfg));
        let server = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig {
                results_dir: results_dir.clone(),
                event_loops,
                ..NetConfig::default()
            },
        )
        .expect("loopback bind");
        Harness {
            service,
            server,
            results_dir,
        }
    }

    fn addr(&self) -> String {
        self.server.local_addr().to_string()
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        self.server.shutdown();
        self.service.shutdown();
        std::fs::remove_dir_all(&self.results_dir).ok();
    }
}

#[test]
fn submit_poll_results_match_the_in_process_ranking_exactly() {
    let h = Harness::start(
        "parity",
        ServeConfig {
            total_threads: 2,
            job_slots: 2,
            ..ServeConfig::default()
        },
    );
    let addr = h.addr();
    let spec = campaign("net-parity");

    let id = client::submit(
        &addr,
        &spec,
        &receptor_source(),
        &LigandSource::synth(SEED, N_LIGANDS),
        Priority::Normal,
    )
    .expect("submit over the socket");

    let status = client::wait(&addr, id, Duration::from_millis(20)).expect("poll to terminal");
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(status.ligands_done, N_LIGANDS);
    let outcome = status.outcome.expect("terminal outcome over the wire");
    assert!(!outcome.stopped_early);

    // The ranking that crossed the wire must equal the in-process
    // screen_campaign ranking bit-for-bit: same indices, names, and
    // f32 score bits (the wire codec preserves shortest-form floats).
    let reference = reference_top_for(&spec);
    assert_eq!(outcome.top.len(), reference.len());
    for (got, (index, name, score)) in outcome.top.iter().zip(&reference) {
        assert_eq!(got.index, *index);
        assert_eq!(&got.name, name);
        assert_eq!(
            got.score.to_bits(),
            score.to_bits(),
            "score for {name} drifted across the wire"
        );
    }

    // The streamed JSONL holds one line per docked ligand, and every
    // line is parseable by the wire codec's own parser.
    let body = client::results(&addr, id).expect("results fetch");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), N_LIGANDS);
    for line in &lines {
        let v = mudock_serve::wire::parse(line).expect("results line parses as JSON");
        assert!(
            v.get("ligand").is_some() && v.get("score").is_some(),
            "{line}"
        );
    }

    // Server-side stats reflect the completed job.
    let stats = h.service.stats();
    assert_eq!(stats.jobs_submitted, 1);
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.ligands_docked, N_LIGANDS as u64);
}

/// The multi-loop tentpole's end-to-end guarantee: a ranking served
/// through a 4-loop frontend is bit-identical to the in-process
/// `screen_campaign` ranking. The free-function client opens a fresh
/// connection per call, so the submit, every poll, and the results
/// fetch each pin to whichever loop accepts them — correctness must
/// not depend on which loop a request lands on.
#[test]
fn four_loop_frontend_serves_a_bit_identical_ranking() {
    let h = Harness::start_with_loops(
        "four-loop",
        ServeConfig {
            total_threads: 2,
            job_slots: 2,
            ..ServeConfig::default()
        },
        4,
    );
    let addr = h.addr();
    let spec = campaign("net-four-loop");

    let id = client::submit(
        &addr,
        &spec,
        &receptor_source(),
        &LigandSource::synth(SEED, N_LIGANDS),
        Priority::Normal,
    )
    .expect("submit through the 4-loop frontend");
    let status = client::wait(&addr, id, Duration::from_millis(20)).expect("poll to terminal");
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(status.ligands_done, N_LIGANDS);

    let reference = reference_top_for(&spec);
    let outcome = status.outcome.expect("terminal outcome over the wire");
    assert_eq!(outcome.top.len(), reference.len());
    for (got, (index, name, score)) in outcome.top.iter().zip(&reference) {
        assert_eq!(got.index, *index);
        assert_eq!(&got.name, name);
        assert_eq!(
            got.score.to_bits(),
            score.to_bits(),
            "score for {name} drifted through the multi-loop frontend"
        );
    }
    assert_eq!(
        client::results(&addr, id)
            .expect("results through the 4-loop frontend")
            .lines()
            .count(),
        N_LIGANDS
    );
}

#[test]
fn delete_cancels_a_running_job_over_the_socket() {
    let h = Harness::start(
        "cancel",
        ServeConfig {
            total_threads: 1,
            job_slots: 1,
            ..ServeConfig::default()
        },
    );
    let addr = h.addr();
    // Heavy enough that cancellation always beats completion: ~400
    // ligands of 50-generation GA on one thread, stopped at a 4-ligand
    // chunk boundary.
    let spec = Campaign::builder()
        .name("net-cancel")
        .population(20)
        .generations(50)
        .seed(SEED)
        .search_radius(3.5)
        .top_k(TOP_K)
        .chunk(ChunkPolicy::Fixed(4))
        .grid_dims(dims())
        .build()
        .unwrap();
    let id = client::submit(
        &addr,
        &spec,
        &receptor_source(),
        &LigandSource::synth(SEED, 400),
        Priority::Normal,
    )
    .unwrap();

    let cancelled = client::cancel(&addr, id).expect("DELETE /jobs/{id}");
    assert!(
        !cancelled.is_terminal() || cancelled.state == JobState::Cancelled,
        "cancel snapshot: {:?}",
        cancelled.state
    );
    let status = client::wait(&addr, id, Duration::from_millis(20)).unwrap();
    assert_eq!(status.state, JobState::Cancelled);
    assert!(
        status.ligands_done < 400,
        "cancellation must land before the input runs out (did {})",
        status.ligands_done
    );
    assert_eq!(h.service.stats().jobs_cancelled, 1);
}

#[test]
fn queued_priorities_and_results_paths_hold_under_concurrent_submissions() {
    let h = Harness::start(
        "multi",
        ServeConfig {
            total_threads: 2,
            job_slots: 2,
            ..ServeConfig::default()
        },
    );
    let addr = h.addr();
    let mut ids = Vec::new();
    for j in 0..3 {
        let spec = CampaignSpec {
            name: format!("multi-{j}"),
            ..campaign("multi")
        };
        let id = client::submit(
            &addr,
            &spec,
            &receptor_source(),
            &LigandSource::synth(SEED.wrapping_add(j), 8),
            Priority::Normal,
        )
        .unwrap();
        ids.push(id);
    }
    // Ids are distinct, every job completes, and each `/results` URL
    // serves its own stream.
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 3);
    for id in &ids {
        let status = client::wait(&addr, *id, Duration::from_millis(20)).unwrap();
        assert_eq!(status.state, JobState::Completed, "job {id}");
        assert_eq!(client::results(&addr, *id).unwrap().lines().count(), 8);
    }
    // All three screened the same receptor at the same dims/level: one
    // build, two cache hits.
    let cache = h.service.stats().cache;
    assert_eq!(cache.misses, 1);
    assert_eq!(cache.hits, 2);
}
