//! Multi-receptor service tests: the grid-spill acceptance scenario
//! (capacity-1 cache + two receptors → spill→reload with rankings
//! bit-identical to an unlimited cache) and shard-aware scheduling (an
//! idle receptor's job overtakes a hot receptor's backlog).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use mudock_core::{Campaign, CampaignSpec, ChunkPolicy};
use mudock_grids::GridDims;
use mudock_mol::{Molecule, Vec3};
use mudock_molio::synthetic_receptor;
use mudock_serve::{
    JobOutcome, JobSpec, JobState, LigandSource, ScreenService, ServeConfig, SpillConfig,
};

const SEED: u64 = 42;
const N_LIGANDS: usize = 24;
const TOP_K: usize = 5;

fn receptor_a() -> Arc<Molecule> {
    Arc::new(synthetic_receptor(7, 120, 8.0))
}

fn receptor_b() -> Arc<Molecule> {
    Arc::new(synthetic_receptor(8, 120, 8.0))
}

fn campaign(name: &str) -> CampaignSpec {
    Campaign::builder()
        .name(name)
        .population(10)
        .generations(5)
        .seed(SEED)
        .search_radius(3.5)
        .top_k(TOP_K)
        .chunk(ChunkPolicy::Fixed(6))
        .grid_dims(GridDims::centered(Vec3::ZERO, 10.0, 0.7))
        .build()
        .expect("the test campaign is valid")
}

fn spec(name: &str, receptor: Arc<Molecule>) -> JobSpec {
    JobSpec {
        receptor,
        ligands: LigandSource::synth(SEED, N_LIGANDS),
        ..JobSpec::from(campaign(name))
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mudock-sharding-{}-{name}", std::process::id()))
}

fn assert_same_ranking(got: &JobOutcome, want: &JobOutcome) {
    assert_eq!(got.top.len(), want.top.len());
    for (g, w) in got.top.iter().zip(&want.top) {
        assert_eq!(
            (g.index, &g.name, g.score.to_bits()),
            (w.index, &w.name, w.score.to_bits()),
            "spilled-and-reloaded grids must score bit-identically"
        );
    }
}

/// The acceptance scenario for the spill tier: two receptors
/// interleaved through a single-slot cache force an evict→spill→reload
/// cycle at every target switch, and every ranking matches an
/// unlimited-cache service bit for bit.
#[test]
fn interleaved_receptors_spill_reload_and_stay_bit_identical() {
    let dir = tmp("spill");
    std::fs::remove_dir_all(&dir).ok();

    // Reference: same four jobs through a cache that never evicts.
    let reference = ScreenService::start(ServeConfig {
        total_threads: 2,
        job_slots: 1,
        cache_capacity: 4,
        ..ServeConfig::default()
    });
    // One executor + sequential waits make the evict/spill/reload
    // sequence fully deterministic.
    let spilling = ScreenService::try_start(ServeConfig {
        total_threads: 2,
        job_slots: 1,
        cache_capacity: 1,
        spill: Some(SpillConfig::new(&dir)),
        ..ServeConfig::default()
    })
    .expect("spill dir is creatable");

    let plan = [
        ("a1", receptor_a()),
        ("b1", receptor_b()),
        ("a2", receptor_a()),
        ("b2", receptor_b()),
    ];
    for (name, receptor) in plan {
        let want = reference
            .submit(spec(name, Arc::clone(&receptor)))
            .unwrap()
            .wait();
        let got = spilling.submit(spec(name, receptor)).unwrap().wait();
        assert_eq!(want.state, JobState::Completed);
        assert_eq!(got.state, JobState::Completed);
        assert_same_ranking(&got, &want);
    }

    let stats = spilling.stats();
    // a1 builds A; b1 evicts+spills A, builds B; a2 evicts+spills B,
    // *reloads* A from disk; b2 evicts+spills A again, reloads B.
    assert_eq!(stats.cache.misses, 4, "every target switch is a miss");
    assert!(
        stats.cache.spills >= 2,
        "evicting built grids must spill them (got {})",
        stats.cache.spills
    );
    assert_eq!(
        stats.cache.reloads, 2,
        "the second visit to each receptor must reload from disk"
    );
    assert_eq!(stats.shards.len(), 2, "two receptors, two shards");
    assert!(stats.shards.iter().all(|s| s.submitted == 2));

    // And the unlimited cache never touched the spill machinery.
    let ref_stats = reference.stats();
    assert_eq!(ref_stats.cache.spills, 0);
    assert_eq!(ref_stats.cache.reloads, 0);

    spilling.shutdown();
    reference.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The scheduling half of the tentpole: with one receptor's job still
/// occupying an executor, the next free slot goes to the *idle*
/// receptor's job even though the hot receptor's backlog was submitted
/// first — the starvation the single queue allowed.
#[test]
fn idle_receptor_overtakes_the_hot_receptors_backlog() {
    let service = ScreenService::start(ServeConfig {
        total_threads: 2,
        job_slots: 2,
        queue_capacity: 8,
        cache_capacity: 4,
        ..ServeConfig::default()
    });

    let started: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let record = |name: &'static str| {
        let started = Arc::clone(&started);
        Arc::new(move |p: &mudock_serve::ChunkProgress<'_>| {
            if p.chunks_done == 1 {
                started.lock().unwrap().push(name);
            }
        })
    };
    // Two blockers against receptor A park in their progress callback,
    // pinning both executor slots to shard A.
    let gate = |release: &Arc<AtomicBool>| {
        let release = Arc::clone(release);
        Arc::new(move |_: &mudock_serve::ChunkProgress<'_>| {
            while !release.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };
    let small = |name: &str, receptor: Arc<Molecule>| {
        let mut s = spec(name, receptor);
        s.ligands = LigandSource::synth(SEED, 2);
        s.campaign.chunk = ChunkPolicy::Fixed(4);
        s
    };
    let release1 = Arc::new(AtomicBool::new(false));
    let release2 = Arc::new(AtomicBool::new(false));
    let mut blocker1 = small("blocker1", receptor_a());
    blocker1.progress = Some(gate(&release1));
    let mut blocker2 = small("blocker2", receptor_a());
    blocker2.progress = Some(gate(&release2));
    let b1 = service.submit(blocker1).unwrap();
    let b2 = service.submit(blocker2).unwrap();
    while b1.chunks_done() < 1 || b2.chunks_done() < 1 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // The hot receptor queues more work *first*; the idle receptor's
    // job arrives later.
    let mut hot_backlog = small("hot-backlog", receptor_a());
    hot_backlog.progress = Some(record("hot-backlog"));
    let mut idle_job = small("idle-receptor", receptor_b());
    idle_job.progress = Some(record("idle-receptor"));
    let hot_handle = service.submit(hot_backlog).unwrap();
    let idle_handle = service.submit(idle_job).unwrap();

    // Free exactly one slot. Shard A still occupies the other, so the
    // router must hand the freed slot to receptor B.
    release1.store(true, Ordering::SeqCst);
    assert_eq!(b1.wait().state, JobState::Completed);
    assert_eq!(idle_handle.wait().state, JobState::Completed);
    assert_eq!(
        started.lock().unwrap().first(),
        Some(&"idle-receptor"),
        "the idle receptor's job must start before the hot backlog"
    );

    release2.store(true, Ordering::SeqCst);
    assert_eq!(b2.wait().state, JobState::Completed);
    assert_eq!(hot_handle.wait().state, JobState::Completed);

    // Join the executors first: a job's shard slot is handed back just
    // *after* its outcome publishes, so occupancy is only guaranteed
    // drained once the workers are gone.
    service.shutdown();
    let stats = service.stats();
    assert_eq!(stats.shards.len(), 2);
    let by_submitted: Vec<u64> = {
        let mut s: Vec<u64> = stats.shards.iter().map(|s| s.submitted).collect();
        s.sort_unstable();
        s
    };
    assert_eq!(by_submitted, vec![1, 3]);
    assert!(
        stats.shards.iter().all(|s| s.active == 0 && s.queued == 0),
        "drained shards report zero occupancy: {:?}",
        stats.shards
    );
}
