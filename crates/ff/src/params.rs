//! AutoDock 4.1 force-field parameters and the precomputed pair table.
//!
//! Per-type values follow the published `AD4.1_bound.dat` parameter set
//! (Huey et al., J. Comput. Chem. 2007): van der Waals diameter `Rii` and
//! well depth `epsii`, atomic volume and solvation parameter for the
//! desolvation term, and hydrogen-bond 12-10 parameters for acceptor types.
//!
//! [`PairTable`] flattens every type-pair's coefficients into dense arrays
//! so that SIMD kernels can `gather` them by `type_i * NUM_TYPES + type_j`
//! — the paper's "memory lookups into large constant data structures"
//! pattern (Section V).

use crate::types::{AtomType, NUM_TYPES};

/// Free-energy model weights (AutoDock 4.1 calibration).
pub mod weights {
    /// van der Waals 12-6 term weight.
    pub const VDW: f32 = 0.1662;
    /// Hydrogen-bond 12-10 term weight.
    pub const HBOND: f32 = 0.1209;
    /// Electrostatic term weight.
    pub const ESTAT: f32 = 0.1406;
    /// Desolvation term weight.
    pub const DESOLV: f32 = 0.1322;
    /// Torsional entropy weight (per active rotatable bond).
    pub const TORS: f32 = 0.2983;
}

/// Coulomb conversion so that `q1*q2/r` with charges in e and r in Å yields
/// kcal/mol.
pub const COULOMB: f32 = 332.06363;

/// Gaussian width of the desolvation term (Å).
pub const DESOLV_SIGMA: f32 = 3.6;

/// Charge-dependent part of the atomic solvation parameter.
pub const QSOLPAR: f32 = 0.01097;

/// Non-bonded interaction cutoff (Å) for intramolecular scoring, matching
/// AutoDock's `NBC`.
pub const NB_CUTOFF: f32 = 8.0;

/// Potential smoothing width (Å), matching AutoGrid's default `smooth 0.5`:
/// distances within ±0.25 Å of the well minimum are snapped to it.
pub const SMOOTH: f32 = 0.5;

/// Per-type static parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TypeParams {
    /// Sum of vdW radii of two like atoms (Å).
    pub rii: f32,
    /// vdW well depth (kcal/mol).
    pub epsii: f32,
    /// Atomic fragmental volume (Å³).
    pub vol: f32,
    /// Atomic solvation parameter.
    pub solpar: f32,
    /// H-bond equilibrium distance (Å) when acting as acceptor (0 = n/a).
    pub rij_hb: f32,
    /// H-bond well depth (kcal/mol) when acting as acceptor (0 = n/a).
    pub eps_hb: f32,
}

/// AD4.1 parameters in [`AtomType::ALL`] order.
pub const TYPE_PARAMS: [TypeParams; NUM_TYPES] = [
    // C
    TypeParams {
        rii: 4.00,
        epsii: 0.150,
        vol: 33.5103,
        solpar: -0.00143,
        rij_hb: 0.0,
        eps_hb: 0.0,
    },
    // A
    TypeParams {
        rii: 4.00,
        epsii: 0.150,
        vol: 33.5103,
        solpar: -0.00052,
        rij_hb: 0.0,
        eps_hb: 0.0,
    },
    // N
    TypeParams {
        rii: 3.50,
        epsii: 0.160,
        vol: 22.4493,
        solpar: -0.00162,
        rij_hb: 0.0,
        eps_hb: 0.0,
    },
    // NA
    TypeParams {
        rii: 3.50,
        epsii: 0.160,
        vol: 22.4493,
        solpar: -0.00162,
        rij_hb: 1.9,
        eps_hb: 5.0,
    },
    // OA
    TypeParams {
        rii: 3.20,
        epsii: 0.200,
        vol: 17.1573,
        solpar: -0.00251,
        rij_hb: 1.9,
        eps_hb: 5.0,
    },
    // S
    TypeParams {
        rii: 4.00,
        epsii: 0.200,
        vol: 33.5103,
        solpar: -0.00214,
        rij_hb: 0.0,
        eps_hb: 0.0,
    },
    // SA
    TypeParams {
        rii: 4.00,
        epsii: 0.200,
        vol: 33.5103,
        solpar: -0.00214,
        rij_hb: 2.5,
        eps_hb: 1.0,
    },
    // H
    TypeParams {
        rii: 2.00,
        epsii: 0.020,
        vol: 0.0,
        solpar: 0.00051,
        rij_hb: 0.0,
        eps_hb: 0.0,
    },
    // HD
    TypeParams {
        rii: 2.00,
        epsii: 0.020,
        vol: 0.0,
        solpar: 0.00051,
        rij_hb: 0.0,
        eps_hb: 0.0,
    },
    // F
    TypeParams {
        rii: 3.09,
        epsii: 0.080,
        vol: 15.4480,
        solpar: -0.00110,
        rij_hb: 0.0,
        eps_hb: 0.0,
    },
    // Cl
    TypeParams {
        rii: 4.09,
        epsii: 0.276,
        vol: 35.8235,
        solpar: -0.00110,
        rij_hb: 0.0,
        eps_hb: 0.0,
    },
    // Br
    TypeParams {
        rii: 4.33,
        epsii: 0.389,
        vol: 42.5661,
        solpar: -0.00110,
        rij_hb: 0.0,
        eps_hb: 0.0,
    },
    // I
    TypeParams {
        rii: 4.72,
        epsii: 0.550,
        vol: 55.0585,
        solpar: -0.00110,
        rij_hb: 0.0,
        eps_hb: 0.0,
    },
    // P
    TypeParams {
        rii: 4.20,
        epsii: 0.200,
        vol: 38.7924,
        solpar: -0.00110,
        rij_hb: 0.0,
        eps_hb: 0.0,
    },
];

/// Look up the static parameters for one type.
#[inline(always)]
pub fn type_params(t: AtomType) -> &'static TypeParams {
    &TYPE_PARAMS[t.idx()]
}

/// Does the ordered pair (i, j) form a hydrogen bond (one side a donor
/// hydrogen `HD`, the other an acceptor `NA`/`OA`/`SA`)?
#[inline]
pub fn is_hbond_pair(a: AtomType, b: AtomType) -> bool {
    (a.is_donor_h() && b.is_acceptor()) || (b.is_donor_h() && a.is_acceptor())
}

/// Precomputed pairwise coefficients for every (type, type) combination,
/// stored as dense `NUM_TYPES × NUM_TYPES` row-major tables so SIMD kernels
/// can gather them.
///
/// For a vdW pair the pair potential is `c12/r¹² − c6/r⁶`; for an H-bond
/// pair it is `c12/r¹² − c10/r¹⁰` (with `c6 = 0` and the `hbond` flag set).
/// Coefficients include the free-energy weights, so kernels sum raw terms.
#[derive(Clone, Debug)]
pub struct PairTable {
    /// Repulsive coefficient (weighted).
    pub c12: Vec<f32>,
    /// Dispersive 6-power coefficient (weighted, 0 for H-bond pairs).
    pub c6: Vec<f32>,
    /// Attractive 10-power coefficient (weighted, 0 for non-H-bond pairs).
    pub c10: Vec<f32>,
    /// 1.0 if the pair is an H-bond pair else 0.0 (selectable in SIMD).
    pub hbond: Vec<f32>,
    /// Equilibrium distance `Rij` of the pair (Å), for smoothing.
    pub rij: Vec<f32>,
}

impl PairTable {
    /// Build the full table (small: 14 × 14 entries per array).
    pub fn new() -> PairTable {
        let n = NUM_TYPES * NUM_TYPES;
        let mut t = PairTable {
            c12: vec![0.0; n],
            c6: vec![0.0; n],
            c10: vec![0.0; n],
            hbond: vec![0.0; n],
            rij: vec![0.0; n],
        };
        for a in AtomType::ALL {
            for b in AtomType::ALL {
                let k = a.idx() * NUM_TYPES + b.idx();
                let pa = type_params(a);
                let pb = type_params(b);
                if is_hbond_pair(a, b) {
                    // 12-10 potential with the acceptor's H-bond parameters.
                    let acc = if a.is_acceptor() { pa } else { pb };
                    let rij = acc.rij_hb;
                    let eps = acc.eps_hb;
                    t.c12[k] = weights::HBOND * 5.0 * eps * rij.powi(12);
                    t.c10[k] = weights::HBOND * 6.0 * eps * rij.powi(10);
                    t.hbond[k] = 1.0;
                    t.rij[k] = rij;
                } else {
                    // Lorentz-Berthelot-style combination as in AutoDock:
                    // arithmetic mean of diameters, geometric mean of depths.
                    let rij = 0.5 * (pa.rii + pb.rii);
                    let eps = (pa.epsii * pb.epsii).sqrt();
                    t.c12[k] = weights::VDW * eps * rij.powi(12);
                    t.c6[k] = weights::VDW * 2.0 * eps * rij.powi(6);
                    t.rij[k] = rij;
                }
            }
        }
        t
    }

    /// Flat index for an (i, j) type pair.
    #[inline(always)]
    pub fn index(a: AtomType, b: AtomType) -> usize {
        a.idx() * NUM_TYPES + b.idx()
    }
}

impl Default for PairTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_symmetric() {
        let t = PairTable::new();
        for a in AtomType::ALL {
            for b in AtomType::ALL {
                let ij = PairTable::index(a, b);
                let ji = PairTable::index(b, a);
                assert_eq!(t.c12[ij], t.c12[ji], "{a}-{b} c12");
                assert_eq!(t.c6[ij], t.c6[ji], "{a}-{b} c6");
                assert_eq!(t.c10[ij], t.c10[ji], "{a}-{b} c10");
                assert_eq!(t.hbond[ij], t.hbond[ji], "{a}-{b} hbond");
            }
        }
    }

    #[test]
    fn hbond_pairs_flagged() {
        let t = PairTable::new();
        assert_eq!(t.hbond[PairTable::index(AtomType::HD, AtomType::OA)], 1.0);
        assert_eq!(t.hbond[PairTable::index(AtomType::OA, AtomType::HD)], 1.0);
        assert_eq!(t.hbond[PairTable::index(AtomType::HD, AtomType::NA)], 1.0);
        assert_eq!(t.hbond[PairTable::index(AtomType::HD, AtomType::SA)], 1.0);
        // HD-HD is not an H-bond; neither is OA-OA (two acceptors).
        assert_eq!(t.hbond[PairTable::index(AtomType::HD, AtomType::HD)], 0.0);
        assert_eq!(t.hbond[PairTable::index(AtomType::OA, AtomType::OA)], 0.0);
        assert_eq!(t.hbond[PairTable::index(AtomType::C, AtomType::C)], 0.0);
    }

    #[test]
    fn vdw_minimum_at_rij() {
        // E(r) = c12/r^12 - c6/r^6 has its minimum exactly at r = Rij with
        // depth -w*eps (by construction of c12 and c6).
        let t = PairTable::new();
        let k = PairTable::index(AtomType::C, AtomType::C);
        let rij = t.rij[k];
        assert_eq!(rij, 4.0);
        let e = |r: f32| t.c12[k] / r.powi(12) - t.c6[k] / r.powi(6);
        let emin = e(rij);
        assert!((emin + weights::VDW * 0.150).abs() < 1e-6, "depth {emin}");
        assert!(e(rij - 0.05) > emin);
        assert!(e(rij + 0.05) > emin);
    }

    #[test]
    fn hbond_minimum_depth() {
        // 12-10 with c12 = 5 eps r^12, c10 = 6 eps r^10: minimum at r = rij
        // with depth -w*eps.
        let t = PairTable::new();
        let k = PairTable::index(AtomType::HD, AtomType::OA);
        let rij = t.rij[k];
        assert_eq!(rij, 1.9);
        let e = |r: f32| t.c12[k] / r.powi(12) - t.c10[k] / r.powi(10);
        let emin = e(rij);
        assert!((emin + weights::HBOND * 5.0).abs() < 2e-4, "depth {emin}");
        assert!(e(rij * 0.95) > emin);
        assert!(e(rij * 1.05) > emin);
    }

    #[test]
    fn hd_oa_uses_acceptor_params_in_both_orders() {
        let t = PairTable::new();
        let a = PairTable::index(AtomType::HD, AtomType::OA);
        let b = PairTable::index(AtomType::OA, AtomType::HD);
        assert_eq!(t.rij[a], 1.9);
        assert_eq!(t.rij[b], 1.9);
    }
}
