//! Scalar reference implementations of the four AutoDock 4 energy terms
//! (Algorithm 2 of the paper: electrostatic, van der Waals, hydrogen bond,
//! desolvation).
//!
//! These are the ground truth that both the grid precomputation
//! (`mudock-grids`) and the SIMD intra-energy kernels (`mudock-core`) are
//! tested against.

use crate::params::{weights, PairTable, COULOMB, DESOLV_SIGMA, QSOLPAR, SMOOTH};
use crate::types::AtomType;

/// Upper clamp applied to the 12-6/12-10 term, matching AutoGrid's
/// `EINTCLAMP` so near-overlapping atoms don't produce infinities.
pub const ECLAMP: f32 = 100_000.0;

/// Minimum interaction distance (Å); shorter distances are treated as this,
/// as in AutoDock's tabulated potentials.
pub const RMIN: f32 = 0.5;

/// Mehler–Solmajer sigmoidal distance-dependent dielectric, as used by
/// AutoDock 4: `ε(r) = A + B / (1 + k·exp(−λB·r))`.
#[inline]
pub fn dielectric(r: f32) -> f32 {
    const LAMBDA: f32 = 0.003_627;
    const EPS0: f32 = 78.4;
    const A: f32 = -8.5525;
    const B: f32 = EPS0 - A;
    const K: f32 = 7.7839;
    A + B / (1.0 + K * (-LAMBDA * B * r).exp())
}

/// AutoGrid-style potential smoothing: distances within ±`SMOOTH`/2 of the
/// pair's equilibrium distance are snapped to it; others move toward it by
/// `SMOOTH`/2.
#[inline]
pub fn smooth_r(r: f32, rij: f32) -> f32 {
    let half = SMOOTH * 0.5;
    if r - rij > half {
        r - half
    } else if rij - r > half {
        r + half
    } else {
        rij
    }
}

/// Weighted van der Waals / hydrogen-bond contribution for a pair with
/// table coefficients at index `k` (both powers evaluated, selected by the
/// table's `hbond` flag — the same branchless structure the SIMD kernel
/// uses).
#[inline]
pub fn vdw_hbond(table: &PairTable, k: usize, r: f32) -> f32 {
    let r = smooth_r(r.max(RMIN), table.rij[k]);
    let inv_r2 = 1.0 / (r * r);
    let inv_r6 = inv_r2 * inv_r2 * inv_r2;
    let inv_r10 = inv_r6 * inv_r2 * inv_r2;
    let inv_r12 = inv_r6 * inv_r6;
    let rep = table.c12[k] * inv_r12;
    let att = table.c6[k] * inv_r6 + table.c10[k] * inv_r10;
    (rep - att).min(ECLAMP)
}

/// Weighted electrostatic contribution: `W_e · 332.06 · q_i q_j / (ε(r)·r)`.
#[inline]
pub fn electrostatic(qi: f32, qj: f32, r: f32) -> f32 {
    let r = r.max(RMIN);
    weights::ESTAT * COULOMB * qi * qj / (dielectric(r) * r)
}

/// Atomic solvation parameter `S = solpar + 0.01097·|q|`.
#[inline]
pub fn solvation_param(t: AtomType, q: f32) -> f32 {
    crate::params::type_params(t).solpar + QSOLPAR * q.abs()
}

/// Weighted desolvation contribution:
/// `W_d · (S_i·V_j + S_j·V_i) · exp(−r²/2σ²)`.
#[inline]
pub fn desolvation(si: f32, vi: f32, sj: f32, vj: f32, r: f32) -> f32 {
    let g = (-(r * r) / (2.0 * DESOLV_SIGMA * DESOLV_SIGMA)).exp();
    weights::DESOLV * (si * vj + sj * vi) * g
}

/// Decomposed pairwise interaction energy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyTerms {
    /// Weighted van der Waals (12-6) part, 0 for H-bond pairs.
    pub vdw: f32,
    /// Weighted hydrogen-bond (12-10) part, 0 for non-H-bond pairs.
    pub hbond: f32,
    /// Weighted electrostatic part.
    pub elec: f32,
    /// Weighted desolvation part.
    pub desolv: f32,
}

impl EnergyTerms {
    /// Sum of all components.
    #[inline]
    pub fn total(&self) -> f32 {
        self.vdw + self.hbond + self.elec + self.desolv
    }
}

/// Full scalar pair interaction between two typed, charged atoms at
/// distance `r` — the reference for every vectorized scoring path.
pub fn pair_energy(
    table: &PairTable,
    ta: AtomType,
    qa: f32,
    tb: AtomType,
    qb: f32,
    r: f32,
) -> EnergyTerms {
    let k = PairTable::index(ta, tb);
    let vh = vdw_hbond(table, k, r);
    let (vdw, hbond) = if table.hbond[k] != 0.0 {
        (0.0, vh)
    } else {
        (vh, 0.0)
    };
    let pa = crate::params::type_params(ta);
    let pb = crate::params::type_params(tb);
    EnergyTerms {
        vdw,
        hbond,
        elec: electrostatic(qa, qb, r),
        desolv: desolvation(
            solvation_param(ta, qa),
            pa.vol,
            solvation_param(tb, qb),
            pb.vol,
            r,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dielectric_limits() {
        // Near contact the medium looks like vacuum-ish (ε ≈ 1.3), at long
        // range like bulk water (ε → 78.4).
        let near = dielectric(0.0);
        assert!((1.0..2.0).contains(&near), "ε(0) = {near}");
        let far = dielectric(100.0);
        assert!((far - 78.4).abs() < 0.5, "ε(100) = {far}");
        // Monotonically increasing.
        let mut prev = dielectric(0.0);
        for i in 1..100 {
            let e = dielectric(i as f32 * 0.25);
            assert!(e >= prev);
            prev = e;
        }
    }

    #[test]
    fn smoothing_snaps_to_well() {
        assert_eq!(smooth_r(4.0, 4.0), 4.0);
        assert_eq!(smooth_r(4.2, 4.0), 4.0); // within half-width
        assert_eq!(smooth_r(3.8, 4.0), 4.0);
        assert_eq!(smooth_r(5.0, 4.0), 4.75); // pulled in by 0.25
        assert_eq!(smooth_r(3.0, 4.0), 3.25); // pushed out by 0.25
    }

    #[test]
    fn vdw_clamped_at_contact() {
        let t = PairTable::new();
        let k = PairTable::index(AtomType::C, AtomType::C);
        assert_eq!(vdw_hbond(&t, k, 0.0), ECLAMP);
        assert!(vdw_hbond(&t, k, 1.0) > 0.0);
    }

    #[test]
    fn electrostatic_sign_and_decay() {
        // Opposite charges attract (negative energy).
        assert!(electrostatic(0.5, -0.5, 3.0) < 0.0);
        assert!(electrostatic(0.5, 0.5, 3.0) > 0.0);
        // Decays with distance (same-charge case).
        let e3 = electrostatic(0.5, 0.5, 3.0);
        let e6 = electrostatic(0.5, 0.5, 6.0);
        assert!(e6 < e3);
    }

    #[test]
    fn desolvation_decays_as_gaussian() {
        let si = solvation_param(AtomType::C, 0.0);
        let vol = crate::params::type_params(AtomType::C).vol;
        let e0 = desolvation(si, vol, si, vol, 0.0).abs();
        let e36 = desolvation(si, vol, si, vol, DESOLV_SIGMA).abs();
        // At r = σ the Gaussian is e^{-1/2}.
        assert!((e36 / e0 - (-0.5f32).exp()).abs() < 1e-4);
    }

    #[test]
    fn pair_energy_splits_vdw_vs_hbond() {
        let t = PairTable::new();
        let e = pair_energy(&t, AtomType::HD, 0.2, AtomType::OA, -0.4, 1.9);
        assert_eq!(e.vdw, 0.0);
        assert!(e.hbond < 0.0, "at equilibrium distance: attractive");
        let e2 = pair_energy(&t, AtomType::C, 0.0, AtomType::C, 0.0, 4.0);
        assert_eq!(e2.hbond, 0.0);
        assert!(e2.vdw < 0.0);
    }

    #[test]
    fn pair_energy_symmetric() {
        let t = PairTable::new();
        for r in [1.5f32, 2.0, 3.3, 5.0, 7.9] {
            let ab = pair_energy(&t, AtomType::NA, -0.3, AtomType::HD, 0.15, r);
            let ba = pair_energy(&t, AtomType::HD, 0.15, AtomType::NA, -0.3, r);
            assert_eq!(ab.total(), ba.total(), "r = {r}");
        }
    }

    #[test]
    fn long_range_energy_is_small() {
        let t = PairTable::new();
        let e = pair_energy(&t, AtomType::C, 0.1, AtomType::OA, -0.2, 12.0);
        assert!(e.vdw.abs() < 1e-3);
        assert!(e.desolv.abs() < 1e-4);
    }
}
