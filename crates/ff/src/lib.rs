//! # mudock-ff — AutoDock 4-style force field
//!
//! The scoring function the paper's muDock mini-app inherits from AutoDock
//! (Morris et al. 1998; Huey et al. 2007): a pairwise free-energy model with
//! four terms — van der Waals (12-6), hydrogen bonding (12-10),
//! electrostatics with a Mehler–Solmajer distance-dependent dielectric, and
//! a Gaussian-envelope desolvation term — plus the published AD4.1
//! per-atom-type parameter set.
//!
//! This crate is deliberately scalar: it is the *reference semantics*. The
//! vectorized kernels in `mudock-core` and the grid precomputation in
//! `mudock-grids` are validated against [`terms::pair_energy`].
//!
//! ```
//! use mudock_ff::{params::PairTable, terms, types::AtomType};
//!
//! let table = PairTable::new();
//! // A carbonyl oxygen accepting an H-bond from a donor hydrogen:
//! let e = terms::pair_energy(&table, AtomType::HD, 0.16, AtomType::OA, -0.35, 1.9);
//! assert!(e.hbond < 0.0);
//! assert!(e.elec < 0.0);
//! ```

pub mod params;
pub mod terms;
pub mod types;
pub mod vterms;

pub use params::{PairTable, TypeParams, COULOMB, NB_CUTOFF};
pub use terms::{pair_energy, EnergyTerms};
pub use types::{AtomType, NUM_TYPES};
