//! Vectorized force-field terms, generic over a [`Simd`] backend.
//!
//! Lane-for-lane equivalents of [`crate::terms`]; the grid builder
//! (`mudock-grids`) and the intra-energy kernel (`mudock-core`) instantiate
//! these at every SIMD level, and the equivalence tests in this module pin
//! them to the scalar reference within documented tolerances.
//!
//! All branches of the scalar code become mask/select operations — the
//! "complex control flow" → "branchless data flow" transformation the paper
//! identifies as a prerequisite for vectorization (Section IX).

use mudock_simd::{math, Simd};

use crate::params::{weights, COULOMB, DESOLV_SIGMA, SMOOTH};
use crate::terms::{ECLAMP, RMIN};

/// Vectorized Mehler–Solmajer dielectric `ε(r)`.
#[inline(always)]
pub fn dielectric<S: Simd>(s: S, r: S::V) -> S::V {
    const LAMBDA: f32 = 0.003_627;
    const EPS0: f32 = 78.4;
    const A: f32 = -8.5525;
    const B: f32 = EPS0 - A;
    const K: f32 = 7.7839;
    let e = math::exp(s, s.mul(r, s.splat(-LAMBDA * B)));
    let denom = s.mul_add(e, s.splat(K), s.splat(1.0));
    s.add(s.splat(A), s.mul(s.splat(B), math::recip_nr(s, denom)))
}

/// Vectorized AutoGrid smoothing: snap `r` to the pair's well distance
/// `rij` when within ±SMOOTH/2, otherwise move it SMOOTH/2 toward the well.
#[inline(always)]
pub fn smooth_r<S: Simd>(s: S, r: S::V, rij: S::V) -> S::V {
    let half = s.splat(SMOOTH * 0.5);
    let above = s.gt(s.sub(r, rij), half);
    let below = s.gt(s.sub(rij, r), half);

    s.select(above, s.sub(r, half), s.select(below, s.add(r, half), rij))
}

/// Vectorized 12-6 / 12-10 van der Waals + hydrogen-bond term with
/// smoothing and the `ECLAMP` ceiling. `c6` must be zero for H-bond pairs
/// and `c10` zero for plain vdW pairs (as produced by
/// [`crate::params::PairTable`]), which makes the power selection free.
#[inline(always)]
pub fn vdw_hbond<S: Simd>(s: S, r: S::V, rij: S::V, c12: S::V, c6: S::V, c10: S::V) -> S::V {
    let r = smooth_r(s, s.max(r, s.splat(RMIN)), rij);
    let inv_r2 = math::recip_nr(s, s.mul(r, r));
    let inv_r6 = s.mul(s.mul(inv_r2, inv_r2), inv_r2);
    let inv_r10 = s.mul(s.mul(inv_r6, inv_r2), inv_r2);
    let inv_r12 = s.mul(inv_r6, inv_r6);
    let att = s.mul_add(c6, inv_r6, s.mul(c10, inv_r10));
    let e = s.sub(s.mul(c12, inv_r12), att);
    s.min(e, s.splat(ECLAMP))
}

/// Vectorized electrostatic term. `qq` is the premultiplied
/// `W_e · 332.06 · q_i · q_j` per lane.
#[inline(always)]
pub fn electrostatic<S: Simd>(s: S, qq: S::V, r: S::V) -> S::V {
    let r = s.max(r, s.splat(RMIN));
    let denom = s.mul(dielectric(s, r), r);
    s.mul(qq, math::recip_nr(s, denom))
}

/// Vectorized Gaussian desolvation envelope `exp(−r²/2σ²)`.
#[inline(always)]
pub fn desolv_gauss<S: Simd>(s: S, r2: S::V) -> S::V {
    let k = -1.0 / (2.0 * DESOLV_SIGMA * DESOLV_SIGMA);
    math::exp(s, s.mul(r2, s.splat(k)))
}

/// Vectorized weighted desolvation term. `sv` is the premultiplied
/// `W_d · (S_i·V_j + S_j·V_i)` per lane.
#[inline(always)]
pub fn desolvation<S: Simd>(s: S, sv: S::V, r2: S::V) -> S::V {
    s.mul(sv, desolv_gauss(s, r2))
}

/// Free-energy weight constants re-exported for kernels that premultiply.
pub mod premult {
    use super::*;

    /// Premultiplied electrostatic coefficient for a charge pair.
    #[inline]
    pub fn qq(qi: f32, qj: f32) -> f32 {
        weights::ESTAT * COULOMB * qi * qj
    }

    /// Premultiplied desolvation coefficient for a typed charge pair.
    #[inline]
    pub fn sv(si: f32, vi: f32, sj: f32, vj: f32) -> f32 {
        weights::DESOLV * (si * vj + sj * vi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PairTable;
    use crate::terms;
    use crate::types::AtomType;
    use mudock_simd::{dispatch, SimdLevel};

    /// Evaluate a single-lane quantity through a full-width backend by
    /// splatting and extracting lane 0.
    macro_rules! lane0 {
        ($level:expr, |$s:ident| $v:expr) => {
            dispatch!($level, |$s| {
                let v = $v;
                $s.extract(v, 0)
            })
        };
    }

    #[test]
    fn dielectric_matches_scalar_all_levels() {
        for level in SimdLevel::available() {
            for i in 1..100 {
                let r = i as f32 * 0.11;
                let want = terms::dielectric(r);
                let got = lane0!(level, |s| dielectric(s, s.splat(r)));
                assert!(
                    (got - want).abs() < 2e-4 * want.abs().max(1.0),
                    "{level} r={r}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn smoothing_matches_scalar_all_levels() {
        for level in SimdLevel::available() {
            for (r, rij) in [
                (4.0f32, 4.0f32),
                (4.2, 4.0),
                (3.8, 4.0),
                (5.0, 4.0),
                (3.0, 4.0),
            ] {
                let want = terms::smooth_r(r, rij);
                let got = lane0!(level, |s| smooth_r(s, s.splat(r), s.splat(rij)));
                assert_eq!(got, want, "{level} r={r} rij={rij}");
            }
        }
    }

    #[test]
    fn vdw_hbond_matches_scalar_all_levels() {
        let table = PairTable::new();
        let pairs = [
            (AtomType::C, AtomType::C),
            (AtomType::C, AtomType::OA),
            (AtomType::HD, AtomType::OA),
            (AtomType::HD, AtomType::NA),
            (AtomType::A, AtomType::S),
        ];
        for level in SimdLevel::available() {
            for (ta, tb) in pairs {
                let k = PairTable::index(ta, tb);
                for i in 1..80 {
                    let r = 0.8 + i as f32 * 0.09;
                    let want = terms::vdw_hbond(&table, k, r);
                    let (c12, c6, c10, rij) =
                        (table.c12[k], table.c6[k], table.c10[k], table.rij[k]);
                    let got = lane0!(level, |s| vdw_hbond(
                        s,
                        s.splat(r),
                        s.splat(rij),
                        s.splat(c12),
                        s.splat(c6),
                        s.splat(c10)
                    ));
                    let tol = 5e-4 * want.abs().max(1.0);
                    assert!(
                        (got - want).abs() < tol,
                        "{level} {ta}-{tb} r={r}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn electrostatic_matches_scalar_all_levels() {
        for level in SimdLevel::available() {
            for i in 1..60 {
                let r = 0.4 + i as f32 * 0.12;
                let (qi, qj) = (0.35f32, -0.42f32);
                let want = terms::electrostatic(qi, qj, r);
                let qqv = premult::qq(qi, qj);
                let got = lane0!(level, |s| electrostatic(s, s.splat(qqv), s.splat(r)));
                assert!(
                    (got - want).abs() < 5e-4 * want.abs().max(1e-3),
                    "{level} r={r}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn desolvation_matches_scalar_all_levels() {
        let si = terms::solvation_param(AtomType::C, 0.1);
        let sj = terms::solvation_param(AtomType::OA, -0.3);
        let vi = crate::params::type_params(AtomType::C).vol;
        let vj = crate::params::type_params(AtomType::OA).vol;
        for level in SimdLevel::available() {
            for i in 0..60 {
                let r = i as f32 * 0.13;
                let want = terms::desolvation(si, vi, sj, vj, r);
                let svv = premult::sv(si, vi, sj, vj);
                let got = lane0!(level, |s| desolvation(s, s.splat(svv), s.splat(r * r)));
                assert!(
                    (got - want).abs() < 1e-5 + 1e-4 * want.abs(),
                    "{level} r={r}: {got} vs {want}"
                );
            }
        }
    }
}
