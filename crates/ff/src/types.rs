//! AutoDock-style atom types.
//!
//! AutoDock 4 assigns each atom one of a small set of types that determine
//! its van der Waals parameters, hydrogen-bonding role, and desolvation
//! parameters; AutoGrid precomputes one interaction map per *ligand* atom
//! type. We implement the 14 types that cover drug-like organic chemistry
//! (the MEDIATE-style screening sets the paper uses are organic small
//! molecules).

/// AutoDock-style atom type of a heavy atom or hydrogen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum AtomType {
    /// Aliphatic carbon.
    C = 0,
    /// Aromatic carbon.
    A = 1,
    /// Nitrogen, no H-bond role.
    N = 2,
    /// Nitrogen hydrogen-bond acceptor.
    NA = 3,
    /// Oxygen hydrogen-bond acceptor.
    OA = 4,
    /// Sulphur, no H-bond role.
    S = 5,
    /// Sulphur hydrogen-bond acceptor.
    SA = 6,
    /// Non-polar hydrogen.
    H = 7,
    /// Polar (donor) hydrogen.
    HD = 8,
    /// Fluorine.
    F = 9,
    /// Chlorine.
    Cl = 10,
    /// Bromine.
    Br = 11,
    /// Iodine.
    I = 12,
    /// Phosphorus.
    P = 13,
}

/// Number of supported atom types (array-table dimension).
pub const NUM_TYPES: usize = 14;

impl AtomType {
    /// All types, in `repr` order.
    pub const ALL: [AtomType; NUM_TYPES] = [
        AtomType::C,
        AtomType::A,
        AtomType::N,
        AtomType::NA,
        AtomType::OA,
        AtomType::S,
        AtomType::SA,
        AtomType::H,
        AtomType::HD,
        AtomType::F,
        AtomType::Cl,
        AtomType::Br,
        AtomType::I,
        AtomType::P,
    ];

    /// Table index of this type.
    #[inline(always)]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Build from a table index. Panics if out of range.
    #[inline]
    pub fn from_idx(i: usize) -> AtomType {
        Self::ALL[i]
    }

    /// Parse an AutoDock/PDBQT type label (e.g. `"OA"`).
    pub fn parse(label: &str) -> Option<AtomType> {
        match label.trim() {
            "C" => Some(AtomType::C),
            "A" => Some(AtomType::A),
            "N" => Some(AtomType::N),
            "NA" => Some(AtomType::NA),
            "OA" => Some(AtomType::OA),
            "S" => Some(AtomType::S),
            "SA" => Some(AtomType::SA),
            "H" => Some(AtomType::H),
            "HD" => Some(AtomType::HD),
            "F" => Some(AtomType::F),
            "Cl" | "CL" => Some(AtomType::Cl),
            "Br" | "BR" => Some(AtomType::Br),
            "I" => Some(AtomType::I),
            "P" => Some(AtomType::P),
            _ => None,
        }
    }

    /// PDBQT label for this type.
    pub fn label(self) -> &'static str {
        match self {
            AtomType::C => "C",
            AtomType::A => "A",
            AtomType::N => "N",
            AtomType::NA => "NA",
            AtomType::OA => "OA",
            AtomType::S => "S",
            AtomType::SA => "SA",
            AtomType::H => "H",
            AtomType::HD => "HD",
            AtomType::F => "F",
            AtomType::Cl => "Cl",
            AtomType::Br => "Br",
            AtomType::I => "I",
            AtomType::P => "P",
        }
    }

    /// Chemical element symbol (types collapse to elements).
    pub fn element(self) -> &'static str {
        match self {
            AtomType::C | AtomType::A => "C",
            AtomType::N | AtomType::NA => "N",
            AtomType::OA => "O",
            AtomType::S | AtomType::SA => "S",
            AtomType::H | AtomType::HD => "H",
            AtomType::F => "F",
            AtomType::Cl => "Cl",
            AtomType::Br => "Br",
            AtomType::I => "I",
            AtomType::P => "P",
        }
    }

    /// Is this a hydrogen type?
    #[inline]
    pub fn is_hydrogen(self) -> bool {
        matches!(self, AtomType::H | AtomType::HD)
    }

    /// Hydrogen-bond donor hydrogen?
    #[inline]
    pub fn is_donor_h(self) -> bool {
        self == AtomType::HD
    }

    /// Hydrogen-bond acceptor heavy atom?
    #[inline]
    pub fn is_acceptor(self) -> bool {
        matches!(self, AtomType::NA | AtomType::OA | AtomType::SA)
    }

    /// Carbon types count as hydrophobic for map-set selection heuristics.
    #[inline]
    pub fn is_hydrophobic(self) -> bool {
        matches!(
            self,
            AtomType::C | AtomType::A | AtomType::F | AtomType::Cl | AtomType::Br | AtomType::I
        )
    }

    /// Approximate covalent radius in Å (used for bond perception).
    pub fn covalent_radius(self) -> f32 {
        match self {
            AtomType::C | AtomType::A => 0.77,
            AtomType::N | AtomType::NA => 0.75,
            AtomType::OA => 0.73,
            AtomType::S | AtomType::SA => 1.02,
            AtomType::H | AtomType::HD => 0.37,
            AtomType::F => 0.71,
            AtomType::Cl => 0.99,
            AtomType::Br => 1.14,
            AtomType::I => 1.33,
            AtomType::P => 1.06,
        }
    }
}

impl std::fmt::Display for AtomType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, t) in AtomType::ALL.iter().enumerate() {
            assert_eq!(t.idx(), i);
            assert_eq!(AtomType::from_idx(i), *t);
        }
    }

    #[test]
    fn labels_roundtrip() {
        for t in AtomType::ALL {
            assert_eq!(AtomType::parse(t.label()), Some(t));
        }
        assert_eq!(AtomType::parse("CL"), Some(AtomType::Cl));
        assert_eq!(AtomType::parse("X"), None);
        assert_eq!(AtomType::parse(" OA "), Some(AtomType::OA));
    }

    #[test]
    fn hbond_roles() {
        assert!(AtomType::HD.is_donor_h());
        assert!(!AtomType::H.is_donor_h());
        assert!(AtomType::OA.is_acceptor());
        assert!(AtomType::NA.is_acceptor());
        assert!(AtomType::SA.is_acceptor());
        assert!(!AtomType::N.is_acceptor());
        assert!(!AtomType::C.is_acceptor());
    }

    #[test]
    fn elements() {
        assert_eq!(AtomType::A.element(), "C");
        assert_eq!(AtomType::NA.element(), "N");
        assert_eq!(AtomType::HD.element(), "H");
    }
}
