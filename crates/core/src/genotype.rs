//! Pose genotype: the chromosome the genetic algorithm evolves.
//!
//! Matches AutoDock's state encoding: 3 translation genes (Å), 4 rigid
//! rotation genes (a quaternion, re-normalized on decode), and one torsion
//! angle (radians) per rotatable bond.

use mudock_mol::{Quat, Vec3};
use rand::rngs::StdRng;
use rand::RngExt;

/// Gene index of the first torsion angle.
pub const FIRST_TORSION: usize = 7;

/// A docking pose chromosome. Stored as a flat gene vector so genetic
/// operators (crossover, per-gene mutation) are uniform.
#[derive(Clone, Debug, PartialEq)]
pub struct Genotype {
    /// `[tx, ty, tz, qw, qx, qy, qz, θ_0, …, θ_{T-1}]`
    pub genes: Vec<f32>,
}

impl Genotype {
    /// Identity pose with `n_torsions` zeroed torsion angles.
    pub fn identity(n_torsions: usize) -> Genotype {
        let mut genes = vec![0.0; FIRST_TORSION + n_torsions];
        genes[3] = 1.0; // unit quaternion w
        Genotype { genes }
    }

    /// Uniformly random pose: translation inside a cube of half-side
    /// `t_bound` around `center`, uniform rotation (Shoemake), torsions
    /// uniform in (−π, π].
    pub fn random(rng: &mut StdRng, n_torsions: usize, center: Vec3, t_bound: f32) -> Genotype {
        let mut g = Genotype::identity(n_torsions);
        for (k, c) in [center.x, center.y, center.z].into_iter().enumerate() {
            g.genes[k] = c + (rng.random::<f32>() * 2.0 - 1.0) * t_bound;
        }
        let q = Quat::from_uniforms(rng.random(), rng.random(), rng.random());
        g.genes[3] = q.w;
        g.genes[4] = q.x;
        g.genes[5] = q.y;
        g.genes[6] = q.z;
        for k in 0..n_torsions {
            g.genes[FIRST_TORSION + k] = (rng.random::<f32>() * 2.0 - 1.0) * std::f32::consts::PI;
        }
        g
    }

    /// Number of torsion genes.
    #[inline]
    pub fn n_torsions(&self) -> usize {
        self.genes.len() - FIRST_TORSION
    }

    /// Rigid-body translation.
    #[inline]
    pub fn translation(&self) -> Vec3 {
        Vec3::new(self.genes[0], self.genes[1], self.genes[2])
    }

    /// Rigid-body rotation, re-normalized (genetic operators perturb the
    /// raw components).
    #[inline]
    pub fn rotation(&self) -> Quat {
        Quat::new(self.genes[3], self.genes[4], self.genes[5], self.genes[6]).normalized()
    }

    /// Torsion angle `k` in radians.
    #[inline]
    pub fn torsion(&self, k: usize) -> f32 {
        self.genes[FIRST_TORSION + k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identity_decodes_to_identity() {
        let g = Genotype::identity(3);
        assert_eq!(g.translation(), Vec3::ZERO);
        assert_eq!(g.rotation(), Quat::IDENTITY);
        assert_eq!(g.n_torsions(), 3);
        assert_eq!(g.torsion(2), 0.0);
    }

    #[test]
    fn random_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = Vec3::new(1.0, -2.0, 3.0);
        for _ in 0..100 {
            let g = Genotype::random(&mut rng, 5, c, 4.0);
            let t = g.translation();
            assert!((t.x - c.x).abs() <= 4.0);
            assert!((t.y - c.y).abs() <= 4.0);
            assert!((t.z - c.z).abs() <= 4.0);
            assert!((g.rotation().norm() - 1.0).abs() < 1e-5);
            for k in 0..5 {
                assert!(g.torsion(k).abs() <= std::f32::consts::PI + 1e-5);
            }
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = Genotype::random(&mut StdRng::seed_from_u64(3), 4, Vec3::ZERO, 5.0);
        let b = Genotype::random(&mut StdRng::seed_from_u64(3), 4, Vec3::ZERO, 5.0);
        assert_eq!(a, b);
    }
}
