//! Kernel work counters — the software stand-in for the LIKWID marker
//! regions the paper instruments (Section VII-d). The architecture model
//! (`mudock-archsim`) converts these counts into operation mixes.

/// Work performed by the docking kernels, accumulated per engine run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Poses fully scored (transform + inter + intra).
    pub poses_scored: u64,
    /// Intramolecular pairs evaluated (real pairs, before cutoff masking).
    pub pairs_evaluated: u64,
    /// Grid map lookups (3 per ligand atom per pose: type/elec/desolv).
    pub grid_lookups: u64,
    /// Atoms rigid-transformed.
    pub atoms_transformed: u64,
    /// Per-torsion atom rotations (branchless kernel: atoms × torsions).
    pub torsion_rotations: u64,
    /// GA generations executed.
    pub generations: u64,
}

impl KernelStats {
    /// Accumulate another run's counters.
    pub fn merge(&mut self, o: &KernelStats) {
        self.poses_scored += o.poses_scored;
        self.pairs_evaluated += o.pairs_evaluated;
        self.grid_lookups += o.grid_lookups;
        self.atoms_transformed += o.atoms_transformed;
        self.torsion_rotations += o.torsion_rotations;
        self.generations += o.generations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = KernelStats {
            poses_scored: 1,
            pairs_evaluated: 2,
            grid_lookups: 3,
            atoms_transformed: 4,
            torsion_rotations: 5,
            generations: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.poses_scored, 2);
        assert_eq!(a.generations, 12);
    }
}
