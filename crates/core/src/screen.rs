//! Virtual screening driver: dock a batch of ligands against one receptor
//! using the work-stealing pool — the full-node scenario of the paper's
//! Figure 2b (one ligand = one task, no intra-task parallelism).

use mudock_grids::GridSet;
use mudock_mol::Molecule;

use crate::campaign::{CampaignSpec, StopCheck};
use crate::engine::{DockParams, DockingEngine, LigandPrep};
use crate::stats::KernelStats;
use crate::topk::TopK;

/// Outcome for one ligand of a screening batch.
#[derive(Clone, Debug)]
pub struct ScreenResult {
    /// Ligand name from the input molecule.
    pub name: String,
    /// Best docking score (kcal/mol); `None` if preparation failed.
    pub best_score: Option<f32>,
    /// Pose evaluations spent.
    pub evaluations: u64,
    /// Kernel work counters for this ligand.
    pub stats: KernelStats,
}

/// Summary of a whole screening run.
#[derive(Clone, Debug)]
pub struct ScreenSummary {
    pub results: Vec<ScreenResult>,
    /// Wall-clock time of the batch.
    pub elapsed: std::time::Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Ligands per second of wall-clock time.
    pub throughput: f64,
}

impl ScreenSummary {
    /// Indices of the `k` best-scoring ligands (ties rank by batch
    /// order). Streams through [`TopK`] — O(k) memory rather than a full
    /// sort, the same accumulator `mudock-serve` uses incrementally.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut top = TopK::new(k);
        for (i, r) in self.results.iter().enumerate() {
            if let Some(score) = r.best_score {
                top.push(score, i);
            }
        }
        top.into_sorted().into_iter().map(|(_, i)| i).collect()
    }

    /// Aggregated kernel counters across the batch.
    pub fn total_stats(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for r in &self.results {
            total.merge(&r.stats);
        }
        total
    }
}

/// Per-ligand GA seed: `base` decorrelated by the ligand's position in
/// the batch. Keyed on the *global* batch index (not the scheduling
/// order), so a chunked or resumed run — the `mudock-serve` path —
/// reproduces a sequential run bit-for-bit.
pub fn ligand_seed(base: u64, batch_index: usize) -> u64 {
    base ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(batch_index as u64 + 1)
}

/// Dock the ligand at `batch_index` of a screening batch. Preparation or
/// docking failures degrade to a `None` score rather than aborting the
/// batch — one bad ligand must not sink a million-ligand campaign.
/// Shared by [`screen`] and the chunked executor in `mudock-serve`.
pub fn dock_ligand(
    engine: &DockingEngine,
    lig: &Molecule,
    params: &DockParams,
    batch_index: usize,
) -> ScreenResult {
    let mut p = params.clone();
    p.seed = ligand_seed(params.seed, batch_index);
    let report = LigandPrep::new(lig.clone())
        .ok()
        .and_then(|prep| engine.dock(&prep, &p).ok());
    match report {
        Some(rep) => ScreenResult {
            name: lig.name.clone(),
            best_score: Some(rep.best_score),
            evaluations: rep.evaluations,
            stats: rep.stats,
        },
        None => ScreenResult {
            name: lig.name.clone(),
            best_score: None,
            evaluations: 0,
            stats: KernelStats::default(),
        },
    }
}

/// Dock every ligand against `grids` on `threads` workers. Each ligand's
/// GA is seeded from `params.seed` and its batch index, so results are
/// reproducible regardless of scheduling order.
pub fn screen(
    grids: &GridSet,
    ligands: &[Molecule],
    params: &DockParams,
    threads: usize,
) -> ScreenSummary {
    let engine = DockingEngine::new(grids).expect("grid set too large for the engine");
    let start = std::time::Instant::now();
    let (results, stats) = mudock_pool::parallel_map_stats(ligands, threads, |i, lig| {
        dock_ligand(&engine, lig, params, i)
    });
    let elapsed = start.elapsed();
    let throughput = ligands.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    ScreenSummary {
        results,
        elapsed,
        threads: stats.threads,
        throughput,
    }
}

/// Dock a batch under a full [`CampaignSpec`] — the campaign-API form of
/// [`screen`]. Ligands are processed in chunks sized by the spec's
/// [`ChunkPolicy`](crate::campaign::ChunkPolicy), and the
/// [`StopPolicy`](crate::campaign::StopPolicy) is evaluated at every
/// chunk boundary, so a campaign can stop on an evaluation budget, a
/// deadline, or once the top-k ranking stabilizes.
///
/// Per-ligand results are identical to [`screen`]'s regardless of
/// chunking or early termination: GA seeds are keyed on the global batch
/// index, so every ligand that *is* docked scores exactly as it would in
/// an uninterrupted sequential run. An early-stopped summary simply
/// holds fewer results (a prefix of the batch).
pub fn screen_campaign(
    grids: &GridSet,
    ligands: &[Molecule],
    spec: &CampaignSpec,
    threads: usize,
) -> ScreenSummary {
    let engine = DockingEngine::new(grids).expect("grid set too large for the engine");
    let params = spec.dock_params();
    let start = std::time::Instant::now();
    let mut sizer = spec.chunk_sizer();
    let mut stop_check = StopCheck::new();
    let mut top: TopK<usize> = TopK::new(spec.top_k);
    let mut results: Vec<ScreenResult> = Vec::with_capacity(ligands.len());
    let mut evaluations = 0u64;
    let mut used_threads = threads.max(1);

    let mut offset = 0;
    while offset < ligands.len() {
        let size = sizer.next_size().min(ligands.len() - offset);
        let chunk = &ligands[offset..offset + size];
        let t0 = std::time::Instant::now();
        let (chunk_results, pool_stats) =
            mudock_pool::parallel_map_stats(chunk, threads, |i, lig| {
                dock_ligand(&engine, lig, &params, offset + i)
            });
        sizer.observe(size, t0.elapsed());
        used_threads = pool_stats.threads;
        for (i, r) in chunk_results.iter().enumerate() {
            evaluations += r.evaluations;
            if let Some(score) = r.best_score {
                top.push(score, offset + i);
            }
        }
        results.extend(chunk_results);
        offset += size;
        // Snapshotting the ranking costs a top-k clone + sort, so only
        // RankingStable — the one policy that reads it — pays for it.
        let ranking = if matches!(spec.stop, crate::campaign::StopPolicy::RankingStable { .. }) {
            top.clone().into_sorted()
        } else {
            Vec::new()
        };
        if stop_check.should_stop(&spec.stop, evaluations, &ranking) {
            break;
        }
    }

    let elapsed = start.elapsed();
    let throughput = results.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    ScreenSummary {
        results,
        elapsed,
        threads: used_threads,
        throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{BackendPolicy, Campaign, ChunkPolicy, StopPolicy};
    use crate::engine::Backend;
    use crate::ga::GaParams;
    use mudock_grids::{GridBuilder, GridDims};
    use mudock_mol::Vec3;
    use mudock_molio::{mediate_like_set, synthetic_receptor};
    use mudock_simd::SimdLevel;

    fn tiny_batch() -> (GridSet, Vec<Molecule>) {
        let rec = synthetic_receptor(21, 150, 9.0);
        let ligands = mediate_like_set(77, 6);
        let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.7);
        // Screening sets span many types: build all maps.
        let gs = GridBuilder::new(&rec, dims).build_simd(SimdLevel::detect());
        (gs, ligands)
    }

    fn quick_params() -> DockParams {
        DockParams {
            ga: GaParams {
                population: 12,
                generations: 6,
                ..Default::default()
            },
            seed: 99,
            backend: Backend::Explicit(SimdLevel::detect()),
            search_radius: Some(4.0),
            local_search: None,
        }
    }

    #[test]
    fn screening_returns_one_result_per_ligand() {
        let (gs, ligands) = tiny_batch();
        let summary = screen(&gs, &ligands, &quick_params(), 2);
        assert_eq!(summary.results.len(), ligands.len());
        for (r, l) in summary.results.iter().zip(&ligands) {
            assert_eq!(r.name, l.name);
            assert!(r.best_score.is_some(), "ligand {} failed", r.name);
        }
        assert!(summary.throughput > 0.0);
    }

    #[test]
    fn screening_is_deterministic_across_thread_counts() {
        let (gs, ligands) = tiny_batch();
        let a = screen(&gs, &ligands, &quick_params(), 1);
        let b = screen(&gs, &ligands, &quick_params(), 2);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.best_score, y.best_score, "ligand {}", x.name);
        }
    }

    #[test]
    fn top_k_is_sorted_by_score() {
        let (gs, ligands) = tiny_batch();
        let summary = screen(&gs, &ligands, &quick_params(), 2);
        let top = summary.top_k(3);
        assert_eq!(top.len(), 3);
        for w in top.windows(2) {
            assert!(
                summary.results[w[0]].best_score.unwrap()
                    <= summary.results[w[1]].best_score.unwrap()
            );
        }
    }

    /// Summary with hand-written scores (no docking) for top_k edge cases.
    fn summary_with_scores(scores: &[Option<f32>]) -> ScreenSummary {
        ScreenSummary {
            results: scores
                .iter()
                .enumerate()
                .map(|(i, &s)| ScreenResult {
                    name: format!("lig{i}"),
                    best_score: s,
                    evaluations: 0,
                    stats: KernelStats::default(),
                })
                .collect(),
            elapsed: std::time::Duration::from_millis(1),
            threads: 1,
            throughput: 0.0,
        }
    }

    #[test]
    fn top_k_breaks_ties_by_batch_order() {
        let s = summary_with_scores(&[Some(-2.0), Some(-5.0), Some(-2.0), Some(-5.0), Some(-2.0)]);
        assert_eq!(s.top_k(4), vec![1, 3, 0, 2]);
    }

    #[test]
    fn top_k_skips_failed_ligands() {
        let s = summary_with_scores(&[None, Some(1.0), None, Some(-1.0), None]);
        assert_eq!(s.top_k(3), vec![3, 1]);

        let all_failed = summary_with_scores(&[None, None, None]);
        assert!(all_failed.top_k(2).is_empty());
    }

    #[test]
    fn top_k_with_k_beyond_len_returns_all_scored() {
        let s = summary_with_scores(&[Some(3.0), Some(-3.0), None, Some(0.0)]);
        assert_eq!(s.top_k(100), vec![1, 3, 0]);
        assert!(s.top_k(0).is_empty());

        let empty = summary_with_scores(&[]);
        assert!(empty.top_k(5).is_empty());
    }

    /// The campaign twin of [`quick_params`].
    fn quick_campaign() -> crate::campaign::CampaignBuilder {
        Campaign::builder()
            .ga(GaParams {
                population: 12,
                generations: 6,
                ..Default::default()
            })
            .seed(99)
            .search_radius(4.0)
            .backend(BackendPolicy::Detect)
    }

    #[test]
    fn screen_campaign_matches_screen_for_any_chunking() {
        let (gs, ligands) = tiny_batch();
        let reference = screen(&gs, &ligands, &quick_params(), 2);
        for chunk in [
            ChunkPolicy::Fixed(1),
            ChunkPolicy::Fixed(4),
            ChunkPolicy::Fixed(100),
        ] {
            let spec = quick_campaign().chunk(chunk).build().unwrap();
            let summary = screen_campaign(&gs, &ligands, &spec, 2);
            assert_eq!(summary.results.len(), ligands.len());
            for (a, b) in summary.results.iter().zip(&reference.results) {
                assert_eq!(a.best_score, b.best_score, "{:?} ligand {}", chunk, a.name);
            }
        }
        let adaptive = quick_campaign()
            .chunk(ChunkPolicy::Adaptive {
                target: std::time::Duration::from_millis(20),
            })
            .build()
            .unwrap();
        let summary = screen_campaign(&gs, &ligands, &adaptive, 2);
        assert_eq!(summary.results.len(), ligands.len());
        for (a, b) in summary.results.iter().zip(&reference.results) {
            assert_eq!(a.best_score, b.best_score, "adaptive ligand {}", a.name);
        }
    }

    #[test]
    fn screen_campaign_evaluation_budget_stops_between_chunks() {
        let (gs, ligands) = tiny_batch();
        // 12 × 6 = 72 evaluations per ligand; budget of one ligand's worth
        // with 2-ligand chunks → exactly one chunk runs.
        let spec = quick_campaign()
            .chunk(ChunkPolicy::Fixed(2))
            .stop(StopPolicy::MaxEvaluations(72))
            .build()
            .unwrap();
        let summary = screen_campaign(&gs, &ligands, &spec, 1);
        assert_eq!(summary.results.len(), 2, "stopped after the first chunk");
        // The processed prefix is bit-identical to the full run's.
        let full = screen(&gs, &ligands, &quick_params(), 1);
        for (a, b) in summary.results.iter().zip(&full.results) {
            assert_eq!(a.best_score, b.best_score);
        }
    }

    #[test]
    fn total_stats_aggregates() {
        let (gs, ligands) = tiny_batch();
        let summary = screen(&gs, &ligands, &quick_params(), 2);
        let total = summary.total_stats();
        assert_eq!(total.generations, 6 * ligands.len() as u64);
        assert!(total.poses_scored > 0);
    }
}
