//! Virtual screening driver: dock a batch of ligands against one receptor
//! using the work-stealing pool — the full-node scenario of the paper's
//! Figure 2b (one ligand = one task, no intra-task parallelism).

use mudock_grids::GridSet;
use mudock_mol::Molecule;

use crate::engine::{DockParams, DockingEngine, LigandPrep};
use crate::stats::KernelStats;

/// Outcome for one ligand of a screening batch.
#[derive(Clone, Debug)]
pub struct ScreenResult {
    /// Ligand name from the input molecule.
    pub name: String,
    /// Best docking score (kcal/mol); `None` if preparation failed.
    pub best_score: Option<f32>,
    /// Pose evaluations spent.
    pub evaluations: u64,
    /// Kernel work counters for this ligand.
    pub stats: KernelStats,
}

/// Summary of a whole screening run.
#[derive(Clone, Debug)]
pub struct ScreenSummary {
    pub results: Vec<ScreenResult>,
    /// Wall-clock time of the batch.
    pub elapsed: std::time::Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Ligands per second of wall-clock time.
    pub throughput: f64,
}

impl ScreenSummary {
    /// Indices of the `k` best-scoring ligands.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.results.len())
            .filter(|&i| self.results[i].best_score.is_some())
            .collect();
        idx.sort_by(|&a, &b| {
            self.results[a]
                .best_score
                .unwrap()
                .total_cmp(&self.results[b].best_score.unwrap())
        });
        idx.truncate(k);
        idx
    }

    /// Aggregated kernel counters across the batch.
    pub fn total_stats(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for r in &self.results {
            total.merge(&r.stats);
        }
        total
    }
}

/// Dock every ligand against `grids` on `threads` workers. Each ligand's
/// GA is seeded from `params.seed` and its batch index, so results are
/// reproducible regardless of scheduling order.
pub fn screen(
    grids: &GridSet,
    ligands: &[Molecule],
    params: &DockParams,
    threads: usize,
) -> ScreenSummary {
    let engine = DockingEngine::new(grids).expect("grid set too large for the engine");
    let start = std::time::Instant::now();
    let (results, stats) = mudock_pool::parallel_map_stats(ligands, threads, |i, lig| {
        let mut p = params.clone();
        p.seed = params.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
        match LigandPrep::new(lig.clone()) {
            Ok(prep) => match engine.dock(&prep, &p) {
                Ok(rep) => ScreenResult {
                    name: lig.name.clone(),
                    best_score: Some(rep.best_score),
                    evaluations: rep.evaluations,
                    stats: rep.stats,
                },
                Err(_) => ScreenResult {
                    name: lig.name.clone(),
                    best_score: None,
                    evaluations: 0,
                    stats: KernelStats::default(),
                },
            },
            Err(_) => ScreenResult {
                name: lig.name.clone(),
                best_score: None,
                evaluations: 0,
                stats: KernelStats::default(),
            },
        }
    });
    let elapsed = start.elapsed();
    let throughput = ligands.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    ScreenSummary { results, elapsed, threads: stats.threads, throughput }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Backend;
    use crate::ga::GaParams;
    use mudock_grids::{GridBuilder, GridDims};
    use mudock_molio::{mediate_like_set, synthetic_receptor};
    use mudock_simd::SimdLevel;
    use mudock_mol::Vec3;

    fn tiny_batch() -> (GridSet, Vec<Molecule>) {
        let rec = synthetic_receptor(21, 150, 9.0);
        let ligands = mediate_like_set(77, 6);
        let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.7);
        // Screening sets span many types: build all maps.
        let gs = GridBuilder::new(&rec, dims).build_simd(SimdLevel::detect());
        (gs, ligands)
    }

    fn quick_params() -> DockParams {
        DockParams {
            ga: GaParams { population: 12, generations: 6, ..Default::default() },
            seed: 99,
            backend: Backend::Explicit(SimdLevel::detect()),
            search_radius: Some(4.0),
            local_search: None,
        }
    }

    #[test]
    fn screening_returns_one_result_per_ligand() {
        let (gs, ligands) = tiny_batch();
        let summary = screen(&gs, &ligands, &quick_params(), 2);
        assert_eq!(summary.results.len(), ligands.len());
        for (r, l) in summary.results.iter().zip(&ligands) {
            assert_eq!(r.name, l.name);
            assert!(r.best_score.is_some(), "ligand {} failed", r.name);
        }
        assert!(summary.throughput > 0.0);
    }

    #[test]
    fn screening_is_deterministic_across_thread_counts() {
        let (gs, ligands) = tiny_batch();
        let a = screen(&gs, &ligands, &quick_params(), 1);
        let b = screen(&gs, &ligands, &quick_params(), 2);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.best_score, y.best_score, "ligand {}", x.name);
        }
    }

    #[test]
    fn top_k_is_sorted_by_score() {
        let (gs, ligands) = tiny_batch();
        let summary = screen(&gs, &ligands, &quick_params(), 2);
        let top = summary.top_k(3);
        assert_eq!(top.len(), 3);
        for w in top.windows(2) {
            assert!(
                summary.results[w[0]].best_score.unwrap()
                    <= summary.results[w[1]].best_score.unwrap()
            );
        }
    }

    #[test]
    fn total_stats_aggregates() {
        let (gs, ligands) = tiny_batch();
        let summary = screen(&gs, &ligands, &quick_params(), 2);
        let total = summary.total_stats();
        assert_eq!(total.generations, 6 * ligands.len() as u64);
        assert!(total.poses_scored > 0);
    }
}
