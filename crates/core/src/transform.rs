//! Pose transforms — the paper's Algorithm 1: rigid-body translation and
//! rotation of the ligand, then rotation of each rotatable-bond fragment.
//!
//! Two implementations with identical semantics:
//!
//! * [`apply_pose_reference`] — index-chasing scalar code (rotates only the
//!   atoms in each torsion's moving set);
//! * [`apply_pose_kernel`] — width-generic branchless code: every torsion
//!   rotates *all* atoms and blends the result with a per-atom 0/1 mask.
//!   This trades redundant arithmetic for streaming, gather/scatter-free
//!   vector code — the transformation that makes the loop vectorizable
//!   (instantiate with [`mudock_simd::Scalar`] to get the
//!   auto-vectorizable form, or any wider backend for explicit SIMD).

use mudock_mol::{ConformSoA, Quat, Topology};
use mudock_simd::{dispatch, Simd, SimdLevel};

use crate::genotype::Genotype;

/// Precomputed per-torsion data for the branchless kernel.
#[derive(Clone, Debug)]
pub struct TorsionPlan {
    /// Fixed axis endpoint (atom index).
    pub a: usize,
    /// Moving-side axis endpoint (atom index).
    pub b: usize,
    /// Moving atom indices (for the scalar reference path).
    pub moving: Vec<u32>,
    /// Per-atom blend weight, padded: 1.0 if the atom moves with this
    /// torsion, else 0.0.
    pub mask: Vec<f32>,
}

/// Build the torsion plans for a topology (padded to `padded` lanes).
pub fn torsion_plans(topo: &Topology, padded: usize) -> Vec<TorsionPlan> {
    topo.torsions
        .iter()
        .map(|t| {
            let mut mask = vec![0.0f32; padded];
            for &m in &t.moving {
                mask[m as usize] = 1.0;
            }
            TorsionPlan {
                a: t.a as usize,
                b: t.b as usize,
                moving: t.moving.clone(),
                mask,
            }
        })
        .collect()
}

/// Scalar reference: quaternion rigid placement + per-fragment rotation
/// over explicit index lists.
pub fn apply_pose_reference(
    base: &ConformSoA,
    plans: &[TorsionPlan],
    g: &Genotype,
    out: &mut ConformSoA,
) {
    debug_assert_eq!(g.n_torsions(), plans.len());
    let q = g.rotation();
    let t = g.translation();
    out.copy_from(base);
    for i in 0..base.n {
        let p = q.rotate(base.pos(i)) + t;
        out.set_pos(i, p);
    }
    for (k, plan) in plans.iter().enumerate() {
        let pa = out.pos(plan.a);
        let pb = out.pos(plan.b);
        let axis = pb - pa;
        let rot = Quat::from_axis_angle(axis, g.torsion(k));
        for &m in &plan.moving {
            let v = out.pos(m as usize) - pa;
            out.set_pos(m as usize, pa + rot.rotate(v));
        }
    }
}

/// Width-generic branchless pose kernel. Padding atoms are transformed too
/// (their far-away coordinates stay far away), so no tail handling exists.
#[inline(always)]
pub fn apply_pose_kernel<S: Simd>(
    s: S,
    base: &ConformSoA,
    plans: &[TorsionPlan],
    g: &Genotype,
    out: &mut ConformSoA,
) {
    debug_assert_eq!(base.len_padded() % S::LANES, 0);
    debug_assert_eq!(base.len_padded(), out.len_padded());
    let m = g.rotation().to_matrix();
    let t = g.translation();
    let len = base.len_padded();

    // Rigid: out = R * base + t, streaming over SoA rows.
    {
        let (m00, m01, m02) = (s.splat(m[0]), s.splat(m[1]), s.splat(m[2]));
        let (m10, m11, m12) = (s.splat(m[3]), s.splat(m[4]), s.splat(m[5]));
        let (m20, m21, m22) = (s.splat(m[6]), s.splat(m[7]), s.splat(m[8]));
        let (tx, ty, tz) = (s.splat(t.x), s.splat(t.y), s.splat(t.z));
        let mut i = 0;
        while i < len {
            let x = s.load(&base.x[i..]);
            let y = s.load(&base.y[i..]);
            let z = s.load(&base.z[i..]);
            let ox = s.mul_add(m02, z, s.mul_add(m01, y, s.mul_add(m00, x, tx)));
            let oy = s.mul_add(m12, z, s.mul_add(m11, y, s.mul_add(m10, x, ty)));
            let oz = s.mul_add(m22, z, s.mul_add(m21, y, s.mul_add(m20, x, tz)));
            s.store(ox, &mut out.x[i..]);
            s.store(oy, &mut out.y[i..]);
            s.store(oz, &mut out.z[i..]);
            i += S::LANES;
        }
    }

    // Torsions: rotate everything about the bond axis, blend by mask.
    for (k, plan) in plans.iter().enumerate() {
        let pa = out.pos(plan.a);
        let pb = out.pos(plan.b);
        let rot = Quat::from_axis_angle(pb - pa, g.torsion(k)).to_matrix();
        let (m00, m01, m02) = (s.splat(rot[0]), s.splat(rot[1]), s.splat(rot[2]));
        let (m10, m11, m12) = (s.splat(rot[3]), s.splat(rot[4]), s.splat(rot[5]));
        let (m20, m21, m22) = (s.splat(rot[6]), s.splat(rot[7]), s.splat(rot[8]));
        let (ax, ay, az) = (s.splat(pa.x), s.splat(pa.y), s.splat(pa.z));
        let mut i = 0;
        while i < len {
            let x = s.load(&out.x[i..]);
            let y = s.load(&out.y[i..]);
            let z = s.load(&out.z[i..]);
            let vx = s.sub(x, ax);
            let vy = s.sub(y, ay);
            let vz = s.sub(z, az);
            let rx = s.mul_add(m02, vz, s.mul_add(m01, vy, s.mul_add(m00, vx, ax)));
            let ry = s.mul_add(m12, vz, s.mul_add(m11, vy, s.mul_add(m10, vx, ay)));
            let rz = s.mul_add(m22, vz, s.mul_add(m21, vy, s.mul_add(m20, vx, az)));
            let w = s.load(&plan.mask[i..]);
            // out = out + w * (rotated - out): w ∈ {0, 1} selects exactly.
            let nx = s.mul_add(w, s.sub(rx, x), x);
            let ny = s.mul_add(w, s.sub(ry, y), y);
            let nz = s.mul_add(w, s.sub(rz, z), z);
            s.store(nx, &mut out.x[i..]);
            s.store(ny, &mut out.y[i..]);
            s.store(nz, &mut out.z[i..]);
            i += S::LANES;
        }
    }
}

/// Dispatch [`apply_pose_kernel`] at a runtime-selected SIMD level.
pub fn apply_pose_simd(
    level: SimdLevel,
    base: &ConformSoA,
    plans: &[TorsionPlan],
    g: &Genotype,
    out: &mut ConformSoA,
) {
    dispatch!(level, |s| apply_pose_kernel(s, base, plans, g, out));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_ff::types::AtomType;
    use mudock_mol::{Atom, Bond, Molecule, Vec3};

    /// 5-atom chain with one torsion in the middle.
    fn chain() -> (Molecule, Topology) {
        let mut m = Molecule::new("chain");
        // Zig-zag chain: atoms must NOT be collinear with the torsion axis,
        // otherwise rotating the fragment is a no-op.
        for i in 0..5 {
            m.atoms.push(Atom::new(
                Vec3::new(
                    i as f32 * 1.3,
                    if i % 2 == 0 { 0.0 } else { 0.9 },
                    0.1 * i as f32,
                ),
                AtomType::C,
                0.0,
            ));
        }
        for i in 0..4u32 {
            m.bonds.push(Bond::new(i, i + 1, i == 1));
        }
        let t = Topology::build(&m);
        (m, t)
    }

    fn setup() -> (ConformSoA, Vec<TorsionPlan>, usize) {
        let (m, topo) = chain();
        let base = ConformSoA::from_molecule(&m);
        let plans = torsion_plans(&topo, base.len_padded());
        let n_tors = plans.len();
        (base, plans, n_tors)
    }

    #[test]
    fn identity_pose_is_identity() {
        let (base, plans, n_tors) = setup();
        let g = Genotype::identity(n_tors);
        let mut out = ConformSoA::with_capacity(base.n);
        apply_pose_reference(&base, &plans, &g, &mut out);
        for i in 0..base.n {
            assert!((out.pos(i) - base.pos(i)).norm() < 1e-5);
        }
    }

    #[test]
    fn translation_moves_everything() {
        let (base, plans, n_tors) = setup();
        let mut g = Genotype::identity(n_tors);
        g.genes[0] = 2.0;
        g.genes[1] = -1.0;
        g.genes[2] = 0.5;
        let mut out = ConformSoA::with_capacity(base.n);
        apply_pose_reference(&base, &plans, &g, &mut out);
        for i in 0..base.n {
            let d = out.pos(i) - base.pos(i);
            assert!((d - Vec3::new(2.0, -1.0, 0.5)).norm() < 1e-5);
        }
    }

    #[test]
    fn torsion_preserves_bond_lengths() {
        let (base, plans, n_tors) = setup();
        assert_eq!(n_tors, 1);
        let mut g = Genotype::identity(n_tors);
        g.genes[crate::genotype::FIRST_TORSION] = 1.1;
        let mut out = ConformSoA::with_capacity(base.n);
        apply_pose_reference(&base, &plans, &g, &mut out);
        // All bonds (chain neighbors) keep their lengths.
        for i in 0..4 {
            let before = base.pos(i).distance(base.pos(i + 1));
            let after = out.pos(i).distance(out.pos(i + 1));
            assert!((before - after).abs() < 1e-4, "bond {i}");
        }
        // Atoms beyond the rotated bond moved; earlier atoms did not.
        assert!((out.pos(0) - base.pos(0)).norm() < 1e-5);
        assert!((out.pos(1) - base.pos(1)).norm() < 1e-5);
        assert!((out.pos(2) - base.pos(2)).norm() < 1e-5);
        assert!((out.pos(3) - base.pos(3)).norm() > 0.1);
        assert!((out.pos(4) - base.pos(4)).norm() > 0.1);
    }

    #[test]
    fn kernel_matches_reference_all_levels() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (base, plans, n_tors) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let g = Genotype::random(&mut rng, n_tors, Vec3::ZERO, 5.0);
            let mut want = ConformSoA::with_capacity(base.n);
            apply_pose_reference(&base, &plans, &g, &mut want);
            for level in SimdLevel::available() {
                let mut got = ConformSoA::with_capacity(base.n);
                apply_pose_simd(level, &base, &plans, &g, &mut got);
                for i in 0..base.n {
                    let d = (got.pos(i) - want.pos(i)).norm();
                    assert!(d < 1e-3, "{level} trial {trial} atom {i}: off by {d}");
                }
            }
        }
    }

    #[test]
    fn padding_stays_far_away() {
        let (base, plans, n_tors) = setup();
        let mut g = Genotype::identity(n_tors);
        g.genes[0] = 3.0;
        let mut out = ConformSoA::with_capacity(base.n);
        apply_pose_simd(SimdLevel::detect(), &base, &plans, &g, &mut out);
        for i in base.n..base.len_padded() {
            assert!(
                out.pos(i).norm() > 1e5,
                "padding atom {i} wandered to {}",
                out.pos(i)
            );
        }
    }

    #[test]
    fn rigid_rotation_preserves_shape() {
        let (base, plans, n_tors) = setup();
        let mut g = Genotype::identity(n_tors);
        // quaternion genes: some non-trivial rotation
        g.genes[3] = 0.8;
        g.genes[4] = 0.36;
        g.genes[5] = -0.2;
        g.genes[6] = 0.44;
        let mut out = ConformSoA::with_capacity(base.n);
        apply_pose_reference(&base, &plans, &g, &mut out);
        for i in 0..base.n {
            for j in (i + 1)..base.n {
                let before = base.pos(i).distance(base.pos(j));
                let after = out.pos(i).distance(out.pos(j));
                assert!((before - after).abs() < 1e-4, "pair {i},{j}");
            }
        }
    }
}
