//! The docking engine: ligand preparation, pose scoring, and the
//! generation loop of Algorithm 1 + Algorithm 2.

use mudock_ff::params::{weights, PairTable};
use mudock_grids::GridSet;
use mudock_mol::{AtomStatics, ConformSoA, Molecule, MoleculeError, Topology, Vec3};
use mudock_simd::SimdLevel;
use rand::SeedableRng as _;

use crate::ga::{Ga, GaParams};
use crate::genotype::Genotype;
use crate::scoring::inter::{inter_energy_reference, inter_energy_simd};
use crate::scoring::intra::{intra_energy_reference, intra_energy_simd};
use crate::scoring::pairs::PairsSoA;
use crate::stats::KernelStats;
use crate::transform::{apply_pose_reference, apply_pose_simd, torsion_plans, TorsionPlan};

/// Which implementation scores poses — the experiment axis of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Scalar code with `libm` math calls in the loop bodies. Library
    /// calls block loop vectorization: this is the paper's
    /// "GCC on ARM without a vectorized GLIBC" arm.
    Reference,
    /// The width-generic kernels instantiated at one lane with inlinable
    /// polynomial math — the loop shape a compiler auto-vectorizes when a
    /// vector math library is available (the `#pragma omp simd` arm).
    AutoVec,
    /// Explicit vectorization through `mudock-simd` (the Highway arm).
    Explicit(SimdLevel),
}

impl Backend {
    /// Short name for reports (`reference`, `autovec`, `avx2`, …).
    pub fn name(self) -> String {
        match self {
            Backend::Reference => "reference".into(),
            Backend::AutoVec => "autovec".into(),
            Backend::Explicit(l) => l.name().into(),
        }
    }

    /// Parse a backend name from an experiment command line. Every
    /// canonical [`Backend::name`] round-trips; `"scalar"` names the
    /// one-lane *explicit* backend ([`SimdLevel::Scalar`]), matching what
    /// `Explicit(Scalar).name()` prints — use `"autovec"` for the
    /// auto-vectorization arm.
    pub fn parse(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "reference" | "scalar-libm" => Some(Backend::Reference),
            "autovec" => Some(Backend::AutoVec),
            other => SimdLevel::parse(other).map(Backend::Explicit),
        }
    }

    /// Every backend runnable on this host.
    pub fn available() -> Vec<Backend> {
        let mut v = vec![Backend::Reference, Backend::AutoVec];
        v.extend(SimdLevel::available().into_iter().map(Backend::Explicit));
        v
    }

    /// The `MUDOCK_BACKEND` environment pin (same names as
    /// [`Backend::parse`]). CI uses it to run the whole suite once per
    /// backend in a matrix, so level-specific scoring divergence fails
    /// there instead of on user hardware. Unparsable values and levels
    /// the host cannot run are ignored (the pin must never make a
    /// working binary refuse to start).
    pub fn from_env() -> Option<Backend> {
        let v = std::env::var("MUDOCK_BACKEND").ok()?;
        let b = Backend::parse(&v)?;
        match b {
            Backend::Explicit(l) if !l.is_supported() => None,
            b => Some(b),
        }
    }

    /// What an *unpinned* run scores with: the [`Backend::from_env`]
    /// pin when set, otherwise the widest SIMD level the host supports.
    /// This is the single resolution point behind
    /// [`DockParams::default`] and
    /// [`BackendPolicy::Detect`](crate::campaign::BackendPolicy).
    pub fn auto() -> Backend {
        Backend::from_env().unwrap_or(Backend::Explicit(SimdLevel::detect()))
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Errors preparing or docking a ligand.
#[derive(Debug)]
pub enum DockError {
    /// Structural problem in the input molecule.
    Molecule(MoleculeError),
    /// The grid set lacks a map for one of the ligand's atom types.
    MissingMap { type_idx: usize },
    /// The grid buffer is too large for exact f32 index arithmetic.
    GridTooLarge { cells: usize },
}

impl std::fmt::Display for DockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DockError::Molecule(e) => write!(f, "invalid molecule: {e}"),
            DockError::MissingMap { type_idx } => {
                write!(
                    f,
                    "grid set has no map built for atom type index {type_idx}"
                )
            }
            DockError::GridTooLarge { cells } => {
                write!(
                    f,
                    "grid buffer of {cells} cells exceeds exact-f32 indexing (2^24)"
                )
            }
        }
    }
}

impl std::error::Error for DockError {}

impl From<MoleculeError> for DockError {
    fn from(e: MoleculeError) -> Self {
        DockError::Molecule(e)
    }
}

/// Everything derived once per ligand before docking.
#[derive(Clone, Debug)]
pub struct LigandPrep {
    pub mol: Molecule,
    pub topo: Topology,
    /// Origin-centered base conformation.
    pub base: ConformSoA,
    pub statics: AtomStatics,
    pub pairs: PairsSoA,
    pub plans: Vec<TorsionPlan>,
}

impl LigandPrep {
    /// Validate and preprocess a ligand (centers it at its origin; pose
    /// translations are absolute positions of the ligand center).
    pub fn new(mut mol: Molecule) -> Result<LigandPrep, DockError> {
        mol.validate()?;
        mol.center_at_origin();
        let topo = Topology::build(&mol);
        let base = ConformSoA::from_molecule(&mol);
        let statics = AtomStatics::from_molecule(&mol);
        let pairs = PairsSoA::build(&mol, &topo, &PairTable::new());
        let plans = torsion_plans(&topo, base.len_padded());
        Ok(LigandPrep {
            mol,
            topo,
            base,
            statics,
            pairs,
            plans,
        })
    }

    /// Number of torsion genes this ligand needs.
    pub fn n_torsions(&self) -> usize {
        self.plans.len()
    }
}

/// Docking run configuration.
#[derive(Clone, Debug)]
pub struct DockParams {
    pub ga: GaParams,
    pub seed: u64,
    pub backend: Backend,
    /// Half-side of the translation search box around the grid center (Å).
    /// Defaults to 60 % of the grid half-extent.
    pub search_radius: Option<f32>,
    /// Optional Solis–Wets Lamarckian local search (AutoDock's LGA
    /// refinement). `None` — the paper's configuration — runs the pure GA.
    pub local_search: Option<crate::local_search::SolisWetsParams>,
}

impl Default for DockParams {
    fn default() -> Self {
        DockParams {
            ga: GaParams::default(),
            seed: 0x6d75_446f_636b,
            backend: Backend::auto(),
            search_radius: None,
            local_search: None,
        }
    }
}

/// Result of docking one ligand.
#[derive(Clone, Debug)]
pub struct DockReport {
    /// Best (lowest) score found, in kcal/mol.
    pub best_score: f32,
    /// Genotype achieving the best score.
    pub best_genotype: Genotype,
    /// Best score per generation (monotonically non-increasing thanks to
    /// elitism).
    pub history: Vec<f32>,
    /// Total pose evaluations.
    pub evaluations: u64,
    /// Kernel work counters.
    pub stats: KernelStats,
}

/// Scores poses of prepared ligands against one receptor grid set.
pub struct DockingEngine<'a> {
    grids: &'a GridSet,
    center: Vec3,
    half_extent: f32,
}

impl<'a> DockingEngine<'a> {
    pub fn new(grids: &'a GridSet) -> Result<DockingEngine<'a>, DockError> {
        if grids.data.len() >= (1 << 24) {
            return Err(DockError::GridTooLarge {
                cells: grids.data.len(),
            });
        }
        let lo = grids.dims.origin;
        let hi = grids.dims.max_corner();
        Ok(DockingEngine {
            grids,
            center: (lo + hi) * 0.5,
            half_extent: (hi - lo).norm() * 0.5 / 3f32.sqrt(),
        })
    }

    /// The receptor grid set being docked against.
    pub fn grids(&self) -> &GridSet {
        self.grids
    }

    /// Check every ligand atom type has a built map.
    pub fn validate_prep(&self, prep: &LigandPrep) -> Result<(), DockError> {
        for i in 0..prep.base.n {
            let t = prep.statics.ty[i] as usize;
            if !self.grids.built[t] {
                return Err(DockError::MissingMap { type_idx: t });
            }
        }
        Ok(())
    }

    /// Score one genotype with the chosen backend. `scratch` holds the
    /// transformed conformation (reused across calls to avoid allocation).
    pub fn score(
        &self,
        prep: &LigandPrep,
        g: &Genotype,
        scratch: &mut ConformSoA,
        backend: Backend,
    ) -> f32 {
        let tors_penalty = weights::TORS * prep.n_torsions() as f32;
        match backend {
            Backend::Reference => {
                apply_pose_reference(&prep.base, &prep.plans, g, scratch);
                inter_energy_reference(self.grids, scratch, &prep.statics)
                    + intra_energy_reference(scratch, &prep.pairs)
                    + tors_penalty
            }
            Backend::AutoVec => {
                apply_pose_simd(SimdLevel::Scalar, &prep.base, &prep.plans, g, scratch);
                inter_energy_simd(SimdLevel::Scalar, self.grids, scratch, &prep.statics)
                    + intra_energy_simd(SimdLevel::Scalar, scratch, &prep.pairs)
                    + tors_penalty
            }
            Backend::Explicit(level) => {
                apply_pose_simd(level, &prep.base, &prep.plans, g, scratch);
                inter_energy_simd(level, self.grids, scratch, &prep.statics)
                    + intra_energy_simd(level, scratch, &prep.pairs)
                    + tors_penalty
            }
        }
    }

    /// Run the full GA docking loop for one ligand.
    pub fn dock(&self, prep: &LigandPrep, params: &DockParams) -> Result<DockReport, DockError> {
        self.dock_with_stop(prep, params, &crate::campaign::StopPolicy::Complete)
    }

    /// Dock one ligand from a [`CampaignSpec`](crate::campaign::CampaignSpec)
    /// — the campaign-API form of [`DockingEngine::dock`]. The spec's
    /// [`StopPolicy`](crate::campaign::StopPolicy) is honored at
    /// generation boundaries: an evaluation budget or deadline caps the
    /// search, and `RankingStable` stops once the best score has held
    /// still for the configured window of generations.
    pub fn dock_campaign(
        &self,
        prep: &LigandPrep,
        spec: &crate::campaign::CampaignSpec,
    ) -> Result<DockReport, DockError> {
        self.dock_with_stop(prep, &spec.dock_params(), &spec.stop)
    }

    fn dock_with_stop(
        &self,
        prep: &LigandPrep,
        params: &DockParams,
        stop: &crate::campaign::StopPolicy,
    ) -> Result<DockReport, DockError> {
        self.validate_prep(prep)?;
        let radius = params
            .search_radius
            .unwrap_or(self.half_extent * 0.6)
            .max(1.0);
        let mut ga = Ga::new(
            params.ga,
            params.seed,
            self.center,
            radius,
            prep.n_torsions(),
        );
        let mut ls_rng = rand::rngs::StdRng::seed_from_u64(params.seed ^ 0x6c73);
        let mut pop = ga.init_population();
        let mut fitness = vec![0.0f32; pop.len()];
        let mut scratch = ConformSoA::with_capacity(prep.base.n);

        let mut best_score = f32::INFINITY;
        let mut best_genotype = pop[0].clone();
        let mut history = Vec::with_capacity(params.ga.generations);
        let mut stats = KernelStats::default();
        let mut evaluations = 0u64;
        let mut stop_check = crate::campaign::StopCheck::new();

        for _gen in 0..params.ga.generations {
            for (ind, fit) in pop.iter().zip(fitness.iter_mut()) {
                *fit = self.score(prep, ind, &mut scratch, params.backend);
                evaluations += 1;
                if *fit < best_score {
                    best_score = *fit;
                    best_genotype = ind.clone();
                }
            }
            // Optional Lamarckian refinement: Solis–Wets on the best
            // fraction, refined genotypes written back into the population.
            if let Some(ls) = &params.local_search {
                let refine = ((pop.len() as f32 * ls.fraction).ceil() as usize).max(1);
                let mut order: Vec<usize> = (0..pop.len()).collect();
                order.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));
                for &idx in order.iter().take(refine) {
                    let r = crate::local_search::solis_wets(
                        self,
                        prep,
                        &pop[idx],
                        fitness[idx],
                        params.backend,
                        ls,
                        self.center,
                        radius,
                        &mut ls_rng,
                        &mut scratch,
                    );
                    evaluations += r.evaluations;
                    if r.score < fitness[idx] {
                        fitness[idx] = r.score;
                        pop[idx] = r.genotype;
                    }
                    if fitness[idx] < best_score {
                        best_score = fitness[idx];
                        best_genotype = pop[idx].clone();
                    }
                }
            }
            stats.poses_scored += pop.len() as u64;
            stats.pairs_evaluated += (prep.pairs.n as u64) * pop.len() as u64;
            stats.grid_lookups += 3 * (prep.base.n as u64) * pop.len() as u64;
            stats.atoms_transformed += (prep.base.n as u64) * pop.len() as u64;
            stats.torsion_rotations +=
                (prep.plans.len() as u64) * (prep.base.n as u64) * pop.len() as u64;
            stats.generations += 1;
            history.push(best_score);
            if stop_check.should_stop(stop, evaluations, &[(best_score, 0)]) {
                break;
            }
            pop = ga.evolve(&pop, &fitness);
        }

        Ok(DockReport {
            best_score,
            best_genotype,
            history,
            evaluations,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_ff::types::AtomType;
    use mudock_grids::{GridBuilder, GridDims};
    use mudock_molio::{complex_1a30_like, synthetic_ligand, LigandSpec};

    fn grids_for(lig: &Molecule, rec: &Molecule) -> GridSet {
        let mut types: Vec<AtomType> = lig.atoms.iter().map(|a| a.ty).collect();
        types.sort_unstable();
        types.dedup();
        let dims = GridDims::centered(Vec3::ZERO, 11.0, 0.55);
        GridBuilder::new(rec, dims)
            .with_types(&types)
            .build_simd(SimdLevel::detect())
    }

    fn small_params(backend: Backend) -> DockParams {
        DockParams {
            ga: GaParams {
                population: 30,
                generations: 25,
                ..Default::default()
            },
            seed: 1234,
            backend,
            search_radius: Some(4.0),
            local_search: None,
        }
    }

    #[test]
    fn docking_improves_over_random() {
        let (rec, lig) = complex_1a30_like();
        let gs = grids_for(&lig, &rec);
        let engine = DockingEngine::new(&gs).unwrap();
        let prep = LigandPrep::new(lig).unwrap();
        let report = engine
            .dock(&prep, &small_params(Backend::Explicit(SimdLevel::detect())))
            .unwrap();
        let first = report.history[0];
        let last = *report.history.last().unwrap();
        assert!(
            last < first,
            "GA failed to improve: first {first}, last {last}"
        );
        assert_eq!(report.evaluations, 30 * 25);
        assert_eq!(report.stats.generations, 25);
    }

    #[test]
    fn history_is_monotone_non_increasing() {
        let (rec, lig) = complex_1a30_like();
        let gs = grids_for(&lig, &rec);
        let engine = DockingEngine::new(&gs).unwrap();
        let prep = LigandPrep::new(lig).unwrap();
        let report = engine.dock(&prep, &small_params(Backend::AutoVec)).unwrap();
        for w in report.history.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-4,
                "best score regressed: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn deterministic_per_seed_and_backend() {
        let (rec, lig) = complex_1a30_like();
        let gs = grids_for(&lig, &rec);
        let engine = DockingEngine::new(&gs).unwrap();
        let prep = LigandPrep::new(lig).unwrap();
        let p = small_params(Backend::Explicit(SimdLevel::detect()));
        let a = engine.dock(&prep, &p).unwrap();
        let b = engine.dock(&prep, &p).unwrap();
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.best_genotype, b.best_genotype);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn backends_agree_on_single_pose_scores() {
        let (rec, lig) = complex_1a30_like();
        let gs = grids_for(&lig, &rec);
        let engine = DockingEngine::new(&gs).unwrap();
        let prep = LigandPrep::new(lig).unwrap();
        let mut scratch = ConformSoA::with_capacity(prep.base.n);
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let g = Genotype::random(&mut rng, prep.n_torsions(), Vec3::ZERO, 4.0);
            let reference = engine.score(&prep, &g, &mut scratch, Backend::Reference);
            for backend in Backend::available() {
                let got = engine.score(&prep, &g, &mut scratch, backend);
                let tol = 5e-3 * reference.abs().max(1.0);
                assert!(
                    (got - reference).abs() <= tol,
                    "{backend}: {got} vs reference {reference}"
                );
            }
        }
    }

    #[test]
    fn missing_map_is_rejected() {
        let (rec, _) = complex_1a30_like();
        // Grid built only for carbon...
        let dims = GridDims::centered(Vec3::ZERO, 8.0, 0.8);
        let gs = GridBuilder::new(&rec, dims)
            .with_types(&[AtomType::C])
            .build_scalar();
        let engine = DockingEngine::new(&gs).unwrap();
        // ...but the ligand certainly contains non-carbon types.
        let lig = synthetic_ligand(
            3,
            LigandSpec {
                heavy_atoms: 20,
                torsions: 4,
            },
        );
        let prep = LigandPrep::new(lig).unwrap();
        let err = engine.dock(&prep, &small_params(Backend::AutoVec));
        assert!(matches!(err, Err(DockError::MissingMap { .. })));
    }

    #[test]
    fn backend_name_parse_round_trips_for_every_available_backend() {
        for backend in Backend::available() {
            let name = backend.name();
            assert_eq!(
                Backend::parse(&name),
                Some(backend),
                "'{name}' must parse back to {backend:?}"
            );
            // Names are CLI-facing: lowercase, non-empty, no whitespace.
            assert!(!name.is_empty());
            assert_eq!(name, name.to_ascii_lowercase());
            assert!(!name.contains(char::is_whitespace));
        }
        // Aliases normalize onto the canonical backends.
        assert_eq!(Backend::parse("scalar-libm"), Some(Backend::Reference));
        assert_eq!(
            Backend::parse("scalar"),
            Some(Backend::Explicit(SimdLevel::Scalar)),
            "'scalar' names the explicit one-lane backend, as name() prints it"
        );
        assert_eq!(Backend::parse("REFERENCE"), Some(Backend::Reference));
        // Unknown names are rejected, not defaulted.
        for bogus in ["", "neon", "avx1024", "auto vec", "fastest", "sse 2"] {
            assert_eq!(Backend::parse(bogus), None, "'{bogus}' must be rejected");
        }
    }

    #[test]
    fn dock_campaign_matches_dock_for_run_to_completion() {
        let (rec, lig) = complex_1a30_like();
        let gs = grids_for(&lig, &rec);
        let engine = DockingEngine::new(&gs).unwrap();
        let prep = LigandPrep::new(lig).unwrap();
        let spec = crate::campaign::Campaign::builder()
            .population(30)
            .generations(25)
            .seed(1234)
            .search_radius(4.0)
            .backend(crate::campaign::BackendPolicy::Fixed(Backend::AutoVec))
            .build()
            .unwrap();
        let via_campaign = engine.dock_campaign(&prep, &spec).unwrap();
        let via_params = engine.dock(&prep, &spec.dock_params()).unwrap();
        assert_eq!(via_campaign.best_score, via_params.best_score);
        assert_eq!(via_campaign.history, via_params.history);
        assert_eq!(via_campaign.evaluations, via_params.evaluations);
    }

    #[test]
    fn dock_campaign_honors_evaluation_budget() {
        let (rec, lig) = complex_1a30_like();
        let gs = grids_for(&lig, &rec);
        let engine = DockingEngine::new(&gs).unwrap();
        let prep = LigandPrep::new(lig).unwrap();
        let spec = crate::campaign::Campaign::builder()
            .population(30)
            .generations(25)
            .seed(1234)
            .search_radius(4.0)
            .stop(crate::campaign::StopPolicy::MaxEvaluations(90))
            .build()
            .unwrap();
        let report = engine.dock_campaign(&prep, &spec).unwrap();
        // 30 evaluations/generation: the budget trips after generation 3.
        assert_eq!(report.evaluations, 90);
        assert_eq!(report.history.len(), 3);
    }

    #[test]
    fn dock_campaign_stops_when_best_score_stabilizes() {
        let (rec, lig) = complex_1a30_like();
        let gs = grids_for(&lig, &rec);
        let engine = DockingEngine::new(&gs).unwrap();
        let prep = LigandPrep::new(lig).unwrap();
        let full = crate::campaign::Campaign::builder()
            .population(30)
            .generations(200)
            .seed(1234)
            .search_radius(4.0)
            .build()
            .unwrap();
        let stable = crate::campaign::CampaignSpec {
            stop: crate::campaign::StopPolicy::RankingStable {
                window: 5,
                epsilon: 0.0,
            },
            ..full.clone()
        };
        let early = engine.dock_campaign(&prep, &stable).unwrap();
        let complete = engine.dock_campaign(&prep, &full).unwrap();
        assert!(
            early.history.len() < complete.history.len(),
            "a 200-generation run should stabilize early ({} generations)",
            early.history.len()
        );
        // The early history is a prefix of the full run's.
        assert_eq!(
            complete.history[..early.history.len()],
            early.history[..],
            "early stop must not change any produced value"
        );
    }

    #[test]
    fn reports_torsional_penalty_in_score() {
        // A rigid ligand and a flexible ligand docked to the same grids:
        // the flexible one carries +W_tors per torsion in its score floor.
        let (rec, lig) = complex_1a30_like();
        let gs = grids_for(&lig, &rec);
        let engine = DockingEngine::new(&gs).unwrap();
        let prep = LigandPrep::new(lig).unwrap();
        let mut scratch = ConformSoA::with_capacity(prep.base.n);
        let g = Genotype::identity(prep.n_torsions());
        let with_tors = engine.score(&prep, &g, &mut scratch, Backend::Reference);
        // Score the identical pose with the torsion count hidden: the
        // penalty must differ by exactly W_tors * n_torsions.
        let raw = with_tors - mudock_ff::params::weights::TORS * prep.n_torsions() as f32;
        assert!(raw < with_tors);
    }
}
