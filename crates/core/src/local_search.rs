//! Solis–Wets local search — the optional Lamarckian refinement step.
//!
//! The paper's muDock deliberately runs its genetic algorithm *without*
//! AutoDock's local search (Section V); this module implements it anyway
//! as the natural extension (AutoDock's LGA = GA + Solis–Wets applied to
//! a fraction of each generation, with the refined genotype written back
//! — Lamarckian inheritance). Disabled by default so the reproduction
//! matches the paper; enable via [`crate::DockParams::local_search`].
//!
//! Solis & Wets (1981): adaptive random-walk hill climbing. Each step
//! samples a Gaussian deviate per gene (plus an accumulated bias); on
//! success the step size expands, on repeated failure it contracts, until
//! it collapses below `rho_min` or the iteration budget runs out.

use mudock_mol::{ConformSoA, Vec3};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::engine::{Backend, DockingEngine, LigandPrep};
use crate::genotype::{Genotype, FIRST_TORSION};

/// Solis–Wets hyper-parameters (AutoDock-like defaults).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolisWetsParams {
    /// Maximum scoring evaluations per invocation.
    pub max_evals: usize,
    /// Initial step scale ρ (gene units: Å / quaternion components /
    /// radians).
    pub rho_start: f32,
    /// Terminate when ρ falls below this.
    pub rho_min: f32,
    /// Consecutive successes before expanding ρ.
    pub expand_after: usize,
    /// Consecutive failures before contracting ρ.
    pub contract_after: usize,
    /// Fraction of the population refined each generation (AutoDock
    /// default 0.06).
    pub fraction: f32,
}

impl Default for SolisWetsParams {
    fn default() -> Self {
        SolisWetsParams {
            max_evals: 300,
            rho_start: 0.5,
            rho_min: 0.01,
            expand_after: 4,
            contract_after: 4,
            fraction: 0.06,
        }
    }
}

fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random::<f32>().max(1e-7);
    let u2: f32 = rng.random();
    (-2.0f32 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Per-gene step scale: translations move in Å, rotations and torsions in
/// smaller angular units.
fn gene_scale(k: usize) -> f32 {
    if k < 3 {
        1.0
    } else if k < FIRST_TORSION {
        0.25
    } else {
        0.5
    }
}

/// Clamp a candidate's translation genes into the search box.
#[allow(clippy::needless_range_loop)] // three named axes, indexed in lockstep
fn clamp_translation(g: &mut Genotype, center: Vec3, bound: f32) {
    let c = [center.x, center.y, center.z];
    for k in 0..3 {
        g.genes[k] = g.genes[k].clamp(c[k] - bound, c[k] + bound);
    }
}

/// Result of one local-search invocation.
#[derive(Clone, Debug)]
pub struct LocalSearchResult {
    pub genotype: Genotype,
    pub score: f32,
    pub evaluations: u64,
}

/// Refine one genotype with Solis–Wets against the engine's scoring
/// function. Deterministic given the RNG state.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // gene vectors indexed in lockstep with `dev`/`bias`
pub fn solis_wets(
    engine: &DockingEngine<'_>,
    prep: &LigandPrep,
    start: &Genotype,
    start_score: f32,
    backend: Backend,
    params: &SolisWetsParams,
    center: Vec3,
    bound: f32,
    rng: &mut StdRng,
    scratch: &mut ConformSoA,
) -> LocalSearchResult {
    let n = start.genes.len();
    let mut best = start.clone();
    let mut best_score = start_score;
    let mut bias = vec![0.0f32; n];
    let mut rho = params.rho_start;
    let mut successes = 0usize;
    let mut failures = 0usize;
    let mut evaluations = 0u64;

    let mut candidate = best.clone();
    while evaluations < params.max_evals as u64 && rho > params.rho_min {
        // Forward step: x + (N(0, ρ)·scale + bias).
        let dev: Vec<f32> = (0..n)
            .map(|k| gauss(rng) * rho * gene_scale(k) + bias[k])
            .collect();
        for k in 0..n {
            candidate.genes[k] = best.genes[k] + dev[k];
        }
        clamp_translation(&mut candidate, center, bound);
        let fwd = engine.score(prep, &candidate, scratch, backend);
        evaluations += 1;

        if fwd < best_score {
            best_score = fwd;
            std::mem::swap(&mut best, &mut candidate);
            candidate.genes.copy_from_slice(&best.genes);
            for k in 0..n {
                bias[k] = 0.2 * bias[k] + 0.4 * dev[k];
            }
            successes += 1;
            failures = 0;
        } else {
            // Reverse step: x - deviation.
            for k in 0..n {
                candidate.genes[k] = best.genes[k] - dev[k];
            }
            clamp_translation(&mut candidate, center, bound);
            let rev = engine.score(prep, &candidate, scratch, backend);
            evaluations += 1;
            if rev < best_score {
                best_score = rev;
                std::mem::swap(&mut best, &mut candidate);
                candidate.genes.copy_from_slice(&best.genes);
                for k in 0..n {
                    bias[k] -= 0.4 * dev[k];
                }
                successes += 1;
                failures = 0;
            } else {
                for b in bias.iter_mut() {
                    *b *= 0.5;
                }
                failures += 1;
                successes = 0;
            }
        }

        if successes >= params.expand_after {
            rho *= 2.0;
            successes = 0;
        }
        if failures >= params.contract_after {
            rho *= 0.5;
            failures = 0;
        }
    }

    LocalSearchResult {
        genotype: best,
        score: best_score,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DockParams, DockingEngine};
    use crate::ga::GaParams;
    use mudock_ff::types::AtomType;
    use mudock_grids::{GridBuilder, GridDims};
    use mudock_simd::SimdLevel;
    use rand::SeedableRng;

    fn setup() -> (mudock_grids::GridSet, LigandPrep) {
        let (rec, lig) = mudock_molio::complex_1a30_like();
        let mut types: Vec<AtomType> = lig.atoms.iter().map(|a| a.ty).collect();
        types.sort_unstable();
        types.dedup();
        let dims = GridDims::centered(Vec3::ZERO, 10.0, 0.7);
        let gs = GridBuilder::new(&rec, dims)
            .with_types(&types)
            .build_simd(SimdLevel::detect());
        (gs, LigandPrep::new(lig).unwrap())
    }

    #[test]
    fn local_search_never_worsens_and_usually_improves() {
        let (gs, prep) = setup();
        let engine = DockingEngine::new(&gs).unwrap();
        let backend = Backend::Explicit(SimdLevel::detect());
        let mut scratch = ConformSoA::with_capacity(prep.base.n);
        let mut rng = StdRng::seed_from_u64(404);
        let mut improved = 0;
        for seed in 0..6u64 {
            let mut pose_rng = StdRng::seed_from_u64(seed);
            let start = Genotype::random(&mut pose_rng, prep.n_torsions(), Vec3::ZERO, 4.0);
            let s0 = engine.score(&prep, &start, &mut scratch, backend);
            let r = solis_wets(
                &engine,
                &prep,
                &start,
                s0,
                backend,
                &SolisWetsParams::default(),
                Vec3::ZERO,
                5.0,
                &mut rng,
                &mut scratch,
            );
            assert!(r.score <= s0, "seed {seed}: worsened {s0} -> {}", r.score);
            assert!(r.evaluations > 0 && r.evaluations <= 300);
            // The returned genotype really scores what it claims.
            let check = engine.score(&prep, &r.genotype, &mut scratch, backend);
            assert!((check - r.score).abs() < 1e-3 * r.score.abs().max(1.0));
            if r.score < s0 - 1e-3 {
                improved += 1;
            }
        }
        assert!(
            improved >= 4,
            "local search should usually improve random poses"
        );
    }

    #[test]
    fn lamarckian_ga_beats_plain_ga_on_average() {
        let (gs, prep) = setup();
        let engine = DockingEngine::new(&gs).unwrap();
        let base = DockParams {
            ga: GaParams {
                population: 20,
                generations: 10,
                ..Default::default()
            },
            seed: 2024,
            backend: Backend::Explicit(SimdLevel::detect()),
            search_radius: Some(4.0),
            local_search: None,
        };
        let plain = engine.dock(&prep, &base).unwrap();

        let mut with_ls = base.clone();
        with_ls.local_search = Some(SolisWetsParams {
            max_evals: 60,
            ..Default::default()
        });
        let lama = engine.dock(&prep, &with_ls).unwrap();
        assert!(lama.evaluations > plain.evaluations, "LS adds evaluations");
        // Same GA seed with extra downhill refinement: never worse.
        assert!(
            lama.best_score <= plain.best_score + 1e-3,
            "lamarckian {} vs plain {}",
            lama.best_score,
            plain.best_score
        );
    }

    #[test]
    fn local_search_is_deterministic() {
        let (gs, prep) = setup();
        let engine = DockingEngine::new(&gs).unwrap();
        let backend = Backend::AutoVec;
        let mut scratch = ConformSoA::with_capacity(prep.base.n);
        let start = Genotype::identity(prep.n_torsions());
        let s0 = engine.score(&prep, &start, &mut scratch, backend);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut scratch = ConformSoA::with_capacity(prep.base.n);
            solis_wets(
                &engine,
                &prep,
                &start,
                s0,
                backend,
                &SolisWetsParams::default(),
                Vec3::ZERO,
                5.0,
                &mut rng,
                &mut scratch,
            )
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.genotype, b.genotype);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_ne!(run(10).genotype, a.genotype);
    }
}
