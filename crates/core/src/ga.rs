//! Genetic algorithm for pose search — the paper's search heuristic
//! (Section V): muDock "uses a genetic algorithm to dock a ligand inside
//! the target protein binding site *without a local search*", i.e. the
//! Lamarckian local-search step of AutoDock is intentionally absent.
//!
//! Standard generational GA: tournament selection, two-point crossover on
//! the flat gene vector, per-gene Gaussian mutation, elitism. Fully
//! deterministic given the seed.

use mudock_mol::Vec3;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::genotype::{Genotype, FIRST_TORSION};

/// GA hyper-parameters (defaults follow the paper's setup: 100 individuals
/// per population).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaParams {
    /// Individuals per generation.
    pub population: usize,
    /// Generations to run.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability that a child is produced by crossover (else cloned).
    pub crossover_rate: f32,
    /// Per-gene mutation probability.
    pub mutation_rate: f32,
    /// Mutation σ for translation genes (Å).
    pub sigma_translation: f32,
    /// Mutation σ for quaternion component genes.
    pub sigma_rotation: f32,
    /// Mutation σ for torsion genes (radians).
    pub sigma_torsion: f32,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams {
            population: 100,
            generations: 1000,
            tournament: 3,
            crossover_rate: 0.8,
            mutation_rate: 0.08,
            sigma_translation: 0.6,
            sigma_rotation: 0.15,
            sigma_torsion: 0.4,
            elitism: 2,
        }
    }
}

/// Standard Gaussian via Box–Muller.
fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random::<f32>().max(1e-7);
    let u2: f32 = rng.random();
    (-2.0f32 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Generational GA state (owns the RNG; all decisions are deterministic in
/// the seed).
pub struct Ga {
    pub params: GaParams,
    rng: StdRng,
    center: Vec3,
    t_bound: f32,
    n_torsions: usize,
}

impl Ga {
    pub fn new(params: GaParams, seed: u64, center: Vec3, t_bound: f32, n_torsions: usize) -> Ga {
        assert!(params.population >= 2, "population must hold at least 2");
        assert!(params.tournament >= 1);
        assert!(params.elitism < params.population);
        Ga {
            params,
            rng: StdRng::seed_from_u64(seed ^ 0x67_615f_7365_6564),
            center,
            t_bound,
            n_torsions,
        }
    }

    /// Uniformly random initial population.
    pub fn init_population(&mut self) -> Vec<Genotype> {
        (0..self.params.population)
            .map(|_| Genotype::random(&mut self.rng, self.n_torsions, self.center, self.t_bound))
            .collect()
    }

    /// Index of the tournament winner (lowest fitness = best).
    fn tournament(&mut self, fitness: &[f32]) -> usize {
        let n = fitness.len();
        let mut best = self.rng.random_range(0..n);
        for _ in 1..self.params.tournament {
            let c = self.rng.random_range(0..n);
            if fitness[c] < fitness[best] {
                best = c;
            }
        }
        best
    }

    /// Two-point crossover on the flat gene vector.
    fn crossover(&mut self, a: &Genotype, b: &Genotype) -> Genotype {
        let len = a.genes.len();
        let mut p1 = self.rng.random_range(0..len);
        let mut p2 = self.rng.random_range(0..len);
        if p1 > p2 {
            std::mem::swap(&mut p1, &mut p2);
        }
        let mut child = a.clone();
        child.genes[p1..p2].copy_from_slice(&b.genes[p1..p2]);
        child
    }

    /// Per-gene Gaussian mutation with role-specific σ; translations stay
    /// inside the search box, torsions wrap to (−π, π].
    fn mutate(&mut self, g: &mut Genotype) {
        use std::f32::consts::PI;
        let p = &self.params;
        for k in 0..g.genes.len() {
            if self.rng.random::<f32>() >= p.mutation_rate {
                continue;
            }
            let noise = gauss(&mut self.rng);
            if k < 3 {
                let c = [self.center.x, self.center.y, self.center.z][k];
                g.genes[k] = (g.genes[k] + noise * p.sigma_translation)
                    .clamp(c - self.t_bound, c + self.t_bound);
            } else if k < FIRST_TORSION {
                g.genes[k] += noise * p.sigma_rotation;
            } else {
                let mut t = g.genes[k] + noise * p.sigma_torsion;
                while t > PI {
                    t -= 2.0 * PI;
                }
                while t < -PI {
                    t += 2.0 * PI;
                }
                g.genes[k] = t;
            }
        }
        // Guard against a degenerate all-zero quaternion after mutation.
        let q2: f32 = g.genes[3..7].iter().map(|x| x * x).sum();
        if q2 < 1e-8 {
            g.genes[3] = 1.0;
        }
    }

    /// Produce the next generation from the scored current one.
    pub fn evolve(&mut self, pop: &[Genotype], fitness: &[f32]) -> Vec<Genotype> {
        assert_eq!(pop.len(), fitness.len());
        let p = self.params;
        let mut order: Vec<usize> = (0..pop.len()).collect();
        order.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));

        let mut next = Vec::with_capacity(pop.len());
        for &e in order.iter().take(p.elitism) {
            next.push(pop[e].clone());
        }
        while next.len() < pop.len() {
            let pa = self.tournament(fitness);
            let mut child = if self.rng.random::<f32>() < p.crossover_rate {
                let pb = self.tournament(fitness);
                self.crossover(&pop[pa], &pop[pb])
            } else {
                pop[pa].clone()
            };
            self.mutate(&mut child);
            next.push(child);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ga(seed: u64) -> Ga {
        Ga::new(
            GaParams {
                population: 20,
                generations: 5,
                ..Default::default()
            },
            seed,
            Vec3::ZERO,
            5.0,
            4,
        )
    }

    #[test]
    fn init_population_size_and_bounds() {
        let mut g = ga(1);
        let pop = g.init_population();
        assert_eq!(pop.len(), 20);
        for ind in &pop {
            assert_eq!(ind.n_torsions(), 4);
            let t = ind.translation();
            assert!(t.x.abs() <= 5.0 && t.y.abs() <= 5.0 && t.z.abs() <= 5.0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (mut a, mut b) = (ga(7), ga(7));
        let pa = a.init_population();
        let pb = b.init_population();
        assert_eq!(pa, pb);
        let fit: Vec<f32> = (0..20).map(|i| i as f32).collect();
        assert_eq!(a.evolve(&pa, &fit), b.evolve(&pb, &fit));
    }

    #[test]
    fn elitism_preserves_best() {
        let mut g = ga(3);
        let pop = g.init_population();
        // Give individual 13 the best fitness.
        let mut fit = vec![10.0f32; 20];
        fit[13] = -5.0;
        let next = g.evolve(&pop, &fit);
        assert_eq!(next.len(), 20);
        assert_eq!(next[0], pop[13], "elite slot 0 holds the best individual");
    }

    #[test]
    fn mutation_keeps_translations_in_box() {
        let mut g = Ga::new(
            GaParams {
                mutation_rate: 1.0,
                sigma_translation: 50.0,
                ..Default::default()
            },
            9,
            Vec3::ZERO,
            2.0,
            0,
        );
        let pop = vec![Genotype::identity(0); 100];
        let fit = vec![0.0f32; 100];
        let next = g.evolve(&pop, &fit);
        for ind in &next {
            let t = ind.translation();
            assert!(t.x.abs() <= 2.0 + 1e-5 && t.y.abs() <= 2.0 + 1e-5 && t.z.abs() <= 2.0 + 1e-5);
        }
    }

    #[test]
    fn torsions_stay_wrapped() {
        let mut g = Ga::new(
            GaParams {
                mutation_rate: 1.0,
                sigma_torsion: 10.0,
                ..Default::default()
            },
            11,
            Vec3::ZERO,
            2.0,
            6,
        );
        let pop = vec![Genotype::identity(6); 50];
        let fit = vec![0.0f32; 50];
        let next = g.evolve(&pop, &fit);
        for ind in next.iter().skip(g.params.elitism) {
            for k in 0..6 {
                assert!(ind.torsion(k).abs() <= std::f32::consts::PI + 1e-4);
            }
        }
    }
}
