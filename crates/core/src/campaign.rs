//! The campaign API: one typed run description for every entry point.
//!
//! A docking *campaign* is everything that defines a run except where its
//! molecules come from and where its results land: the GA configuration,
//! the seed, and three orthogonal **policy objects** that replace the
//! loose knobs previously scattered across `DockParams`, `core::screen`
//! arguments, `serve::JobSpec` fields, and CLI flags:
//!
//! * [`BackendPolicy`] — which kernel implementation scores poses:
//!   auto-detect the widest SIMD level, fix an exact [`Backend`], or pin
//!   a [`SimdLevel`] per job so heterogeneous clients can share a node
//!   (grids are then built *and cached* at that level);
//! * [`StopPolicy`] — when the run may end before the input is
//!   exhausted: never, after an evaluation budget, at a wall-clock
//!   deadline, or once the top-k ranking has stopped moving
//!   ([`StopPolicy::RankingStable`]);
//! * [`ChunkPolicy`] — how work is batched for scheduling and
//!   checkpointing: a fixed ligand count, or adaptively sized from the
//!   measured per-ligand cost so checkpoint granularity stays roughly
//!   constant in *seconds* regardless of GA parameters.
//!
//! A [`CampaignSpec`] is built through [`Campaign::builder`], which
//! rejects invalid configurations (zero top-k, empty chunks, non-finite
//! radii, impossible GA shapes, unsupported SIMD pins) at build time with
//! a typed [`CampaignError`] — not deep inside an executor thread.
//!
//! # Worked example — all three policies
//!
//! Pin the job to SSE2 (every x86-64 host has it), stop once the top-3
//! ranking holds still for two consecutive chunks, and let the chunk
//! sizer aim for ~50 ms of work per chunk:
//!
//! ```
//! use std::time::Duration;
//! use mudock_core::{screen_campaign, Campaign, BackendPolicy, ChunkPolicy, StopPolicy};
//! use mudock_grids::GridBuilder;
//! use mudock_simd::SimdLevel;
//!
//! let spec = Campaign::builder()
//!     .name("worked-example")
//!     .population(10)
//!     .generations(4)
//!     .seed(7)
//!     .search_radius(3.5)
//!     .backend(BackendPolicy::Pinned(SimdLevel::Scalar)) // per-job SIMD pin
//!     .stop(StopPolicy::RankingStable { window: 2, epsilon: 0.0 }) // early stop
//!     .chunk(ChunkPolicy::Adaptive { target: Duration::from_millis(50) })
//!     .top_k(3)
//!     .build()
//!     .expect("a valid campaign");
//!
//! let receptor = mudock_molio::synthetic_receptor(1, 80, 8.0);
//! let ligands = mudock_molio::mediate_like_set(7, 8);
//! let dims = spec.dims_for(&receptor);
//! let grids = GridBuilder::new(&receptor, dims).build_simd(spec.grid_level());
//! let summary = screen_campaign(&grids, &ligands, &spec, 1);
//! assert!(summary.results.len() <= 8); // RankingStable may stop early
//! assert!(summary.top_k(3).len() <= 3);
//! ```
//!
//! The same `spec` drives every other entry point: one-shot docking
//! ([`DockingEngine::dock_campaign`](crate::engine::DockingEngine::dock_campaign)),
//! service jobs (`mudock_serve::JobSpec::from(spec)`), and the `mudock`
//! CLI — one workload description, many execution strategies.

use std::time::{Duration, Instant};

use mudock_grids::GridDims;
use mudock_mol::Molecule;
use mudock_simd::SimdLevel;

use crate::engine::{Backend, DockParams};
use crate::ga::GaParams;
use crate::local_search::SolisWetsParams;

/// Which kernel implementation a campaign scores with.
///
/// The paper's portability result is that the *same* kernel source
/// adapts per host; this policy makes the choice a per-campaign property
/// instead of a global. [`BackendPolicy::Pinned`] is the serve-layer
/// "SIMD-level pinning per job": grids are built and cached at the
/// pinned level, so two clients pinning different levels on one node get
/// distinct `(fingerprint, dims, level)` cache entries rather than
/// poisoning each other's grids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendPolicy {
    /// Use the widest SIMD level the host supports (the default).
    #[default]
    Detect,
    /// Use exactly this backend, including the non-SIMD arms
    /// ([`Backend::Reference`], [`Backend::AutoVec`]).
    Fixed(Backend),
    /// Pin explicit SIMD at one level for the whole campaign.
    Pinned(SimdLevel),
}

impl BackendPolicy {
    /// The concrete [`Backend`] this policy scores poses with.
    /// [`BackendPolicy::Detect`] honors the `MUDOCK_BACKEND`
    /// environment pin (see [`Backend::auto`]); explicit policies
    /// always win over the environment.
    pub fn resolve(self) -> Backend {
        match self {
            BackendPolicy::Detect => Backend::auto(),
            BackendPolicy::Fixed(b) => b,
            BackendPolicy::Pinned(l) => Backend::Explicit(l),
        }
    }

    /// The SIMD level receptor grids are built (and cache-keyed) at.
    ///
    /// Pinned campaigns build grids at their pinned level so the whole
    /// run — precomputation included — executes the requested strategy.
    /// The scalar arms build at [`SimdLevel::Scalar`] for full
    /// reproducibility; [`BackendPolicy::Detect`] takes the host's best.
    pub fn grid_level(self) -> SimdLevel {
        match self {
            BackendPolicy::Detect => match Backend::auto() {
                Backend::Explicit(l) => l,
                // An env pin to a scalar arm builds grids at Scalar for
                // full reproducibility, same as Fixed(Reference/AutoVec).
                _ => SimdLevel::Scalar,
            },
            BackendPolicy::Fixed(Backend::Explicit(l)) | BackendPolicy::Pinned(l) => l,
            BackendPolicy::Fixed(_) => SimdLevel::Scalar,
        }
    }

    /// Is this policy runnable on the current host?
    pub fn is_supported(self) -> bool {
        match self {
            BackendPolicy::Detect => true,
            BackendPolicy::Fixed(Backend::Explicit(l)) | BackendPolicy::Pinned(l) => {
                l.is_supported()
            }
            BackendPolicy::Fixed(_) => true,
        }
    }
}

/// How a campaign's jobs share a node's executor slots with jobs for
/// *other* receptors.
///
/// A screening node serves many targets at once; without sharding, a
/// burst of jobs against one hot receptor drains the whole queue ahead
/// of everyone else and monopolizes every executor slot. The serve
/// layer groups queued jobs into per-receptor *shards* (keyed by the
/// grid content fingerprint, [`mudock_grids::hash`]) and picks the next
/// job from the least-served shard. This policy is the job's stance in
/// that arbitration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ShardPolicy {
    /// Participate with weight 1: every receptor gets an equal share of
    /// the executor slots (the default).
    #[default]
    FairShare,
    /// Participate with this relative weight (finite, positive). A job
    /// with weight 2 tolerates twice the shard occupancy of a weight-1
    /// job before yielding to other receptors.
    Weighted(f32),
    /// Opt out of per-receptor grouping: all single-queue jobs share
    /// one *unsharded* group, ordered purely by priority and
    /// submission order among themselves (the pre-sharding rules),
    /// regardless of receptor. The group as a whole still competes
    /// for executor slots — and is capped — like any single shard, so
    /// opting out never outranks the fairness machinery.
    SingleQueue,
}

/// Largest accepted [`ShardPolicy::Weighted`] weight. A weight beyond
/// this is indistinguishable from opting out of fairness — which is
/// what [`ShardPolicy::SingleQueue`] says explicitly.
pub const MAX_SHARD_WEIGHT: f32 = 1024.0;

impl ShardPolicy {
    /// The relative scheduling weight this policy claims.
    pub fn weight(self) -> f32 {
        match self {
            ShardPolicy::FairShare | ShardPolicy::SingleQueue => 1.0,
            ShardPolicy::Weighted(w) => w,
        }
    }

    /// Whether jobs under this policy join per-receptor shard
    /// accounting ([`ShardPolicy::SingleQueue`] bypasses it).
    pub fn is_sharded(self) -> bool {
        !matches!(self, ShardPolicy::SingleQueue)
    }
}

/// When a campaign may end before its input is exhausted.
///
/// Screening runs check the policy at chunk boundaries; one-shot docking
/// checks it at generation boundaries. Stopping early never discards
/// completed work — results already produced keep their exact values, so
/// an early-stopped ranking is always a prefix-consistent subset of the
/// full run's.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum StopPolicy {
    /// Run until the input is exhausted (the default).
    #[default]
    Complete,
    /// Stop once this many pose evaluations have been spent (live work;
    /// chunks replayed from a checkpoint are free and do not count).
    MaxEvaluations(u64),
    /// Stop at a wall-clock budget measured from execution start.
    Deadline(Duration),
    /// Stop once the top-k ranking has been stable for `window`
    /// consecutive checks: no rank's score moved by more than `epsilon`
    /// (kcal/mol) and the ranking kept its length. The serve layer wires
    /// this through the per-chunk `ChunkProgress::cancel` hook it already
    /// exposes to user callbacks.
    RankingStable {
        /// Consecutive stable checks required before stopping.
        window: usize,
        /// Maximum per-rank score movement still counted as stable.
        epsilon: f32,
    },
}

/// How a screening campaign batches ligands for scheduling, result
/// flushing, and checkpointing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChunkPolicy {
    /// Every chunk holds exactly this many ligands (the default: 16).
    /// Must be between 1 and [`MAX_CHUNK`]; the builder rejects values
    /// outside that range.
    Fixed(usize),
    /// Size each chunk from the measured per-ligand docking cost so one
    /// chunk takes roughly `target` of wall-clock time — checkpoint
    /// granularity stays ~seconds whether the GA runs 5 generations or
    /// 5000. The first chunk is a small probe.
    Adaptive {
        /// Wall-clock time one chunk should take.
        target: Duration,
    },
}

impl Default for ChunkPolicy {
    fn default() -> Self {
        ChunkPolicy::Fixed(16)
    }
}

/// Ligands per adaptive probe chunk (before any cost measurement).
const ADAPTIVE_PROBE: usize = 4;
/// Hard ceiling on any chunk size (bounds checkpoint loss on a crash).
/// [`ChunkPolicy::Fixed`] values above it are rejected at build time;
/// [`ChunkPolicy::Adaptive`] sizing saturates here.
pub const MAX_CHUNK: usize = 4096;

/// Picks the next chunk size under a [`ChunkPolicy`], learning the
/// per-ligand cost from completed chunks.
///
/// Purely advisory state: chunk *boundaries* may differ between runs
/// (adaptive sizing measures wall-clock time), but per-ligand results
/// never do — seeds are keyed on the global batch index, and checkpoint
/// replay uses each recorded chunk's own size.
#[derive(Clone, Debug)]
pub struct ChunkSizer {
    policy: ChunkPolicy,
    /// EWMA of seconds per ligand, `None` until the first observation.
    cost: Option<f64>,
}

impl ChunkSizer {
    pub fn new(policy: ChunkPolicy) -> ChunkSizer {
        ChunkSizer { policy, cost: None }
    }

    /// Size of the next chunk to dock.
    pub fn next_size(&self) -> usize {
        match self.policy {
            ChunkPolicy::Fixed(n) => n.clamp(1, MAX_CHUNK),
            ChunkPolicy::Adaptive { target } => match self.cost {
                None => ADAPTIVE_PROBE,
                Some(per_ligand) => {
                    let ideal = target.as_secs_f64() / per_ligand.max(1e-9);
                    (ideal.round() as usize).clamp(1, MAX_CHUNK)
                }
            },
        }
    }

    /// Record a completed chunk's measured cost.
    pub fn observe(&mut self, ligands: usize, elapsed: Duration) {
        if ligands == 0 {
            return;
        }
        let per_ligand = elapsed.as_secs_f64() / ligands as f64;
        self.cost = Some(match self.cost {
            None => per_ligand,
            // EWMA: adapt to drifting ligand sizes without thrashing.
            Some(prev) => 0.5 * prev + 0.5 * per_ligand,
        });
    }
}

/// Evaluates a [`StopPolicy`] against a running campaign.
///
/// Feed it the cumulative live evaluation count and the current top-k
/// ranking (`(score, global_index)` pairs, best first) at every chunk or
/// generation boundary; it answers whether the policy says stop.
#[derive(Clone, Debug)]
pub struct StopCheck {
    started: Instant,
    stable_checks: usize,
    prev_ranking: Option<Vec<f32>>,
}

impl Default for StopCheck {
    fn default() -> Self {
        Self::new()
    }
}

impl StopCheck {
    pub fn new() -> StopCheck {
        StopCheck {
            started: Instant::now(),
            stable_checks: 0,
            prev_ranking: None,
        }
    }

    /// Should the campaign stop now? Call once per boundary; the
    /// ranking-stability window counts *calls*, so the caller controls
    /// the check cadence.
    pub fn should_stop(
        &mut self,
        policy: &StopPolicy,
        evaluations: u64,
        ranking: &[(f32, usize)],
    ) -> bool {
        match policy {
            StopPolicy::Complete => false,
            StopPolicy::MaxEvaluations(max) => evaluations >= *max,
            StopPolicy::Deadline(budget) => self.started.elapsed() >= *budget,
            StopPolicy::RankingStable { window, epsilon } => {
                let scores: Vec<f32> = ranking.iter().map(|&(s, _)| s).collect();
                let stable = match &self.prev_ranking {
                    Some(prev) if prev.len() == scores.len() && !scores.is_empty() => prev
                        .iter()
                        .zip(&scores)
                        .all(|(a, b)| (a - b).abs() <= *epsilon),
                    _ => false,
                };
                self.stable_checks = if stable { self.stable_checks + 1 } else { 0 };
                self.prev_ranking = Some(scores);
                self.stable_checks >= *window
            }
        }
    }
}

/// A typed rejection from [`CampaignBuilder::build`].
///
/// Every variant is a configuration that previously either panicked deep
/// in an executor (`GaParams` assertions), was silently clamped
/// (`chunk_size.max(1)`), or produced a degenerate run (top-k of zero).
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignError {
    /// `top_k` must retain at least one ligand.
    InvalidTopK(usize),
    /// Fixed chunk size of zero, or an adaptive target of zero.
    InvalidChunk(String),
    /// Search radius must be finite and positive (Å).
    InvalidRadius(f32),
    /// GA shape the engine cannot run (population < 2, zero tournament,
    /// elitism ≥ population, zero generations).
    InvalidGa(String),
    /// Stop policy with an empty budget or window.
    InvalidStop(String),
    /// Shard weight that is non-finite, non-positive, or absurd.
    InvalidShard(String),
    /// The pinned backend is not runnable on this host.
    UnsupportedBackend(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::InvalidTopK(k) => {
                write!(f, "top-k of {k} retains nothing; use k >= 1")
            }
            CampaignError::InvalidChunk(why) => write!(f, "invalid chunk policy: {why}"),
            CampaignError::InvalidRadius(r) => {
                write!(f, "search radius {r} Å must be finite and positive")
            }
            CampaignError::InvalidGa(why) => write!(f, "invalid GA configuration: {why}"),
            CampaignError::InvalidStop(why) => write!(f, "invalid stop policy: {why}"),
            CampaignError::InvalidShard(why) => write!(f, "invalid shard policy: {why}"),
            CampaignError::UnsupportedBackend(which) => {
                write!(f, "backend {which} is not supported on this host")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// A validated, fully-typed description of one docking campaign.
///
/// Construct through [`Campaign::builder`]; every entry point — one-shot
/// [`dock_campaign`](crate::engine::DockingEngine::dock_campaign), batch
/// [`screen_campaign`](crate::screen::screen_campaign), `mudock-serve`
/// jobs, and the CLI — consumes this one shape.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Human-readable campaign name (job reports, JSONL lines).
    pub name: String,
    /// GA hyper-parameters for every ligand's pose search.
    pub ga: GaParams,
    /// Base RNG seed (per-ligand seeds derive via
    /// [`ligand_seed`](crate::screen::ligand_seed)).
    pub seed: u64,
    /// Half-side of the translation search box (Å); grid-derived when
    /// `None`.
    pub search_radius: Option<f32>,
    /// Optional Solis–Wets Lamarckian refinement.
    pub local_search: Option<SolisWetsParams>,
    /// Which kernel implementation scores poses.
    pub backend: BackendPolicy,
    /// When the campaign may end early.
    pub stop: StopPolicy,
    /// How ligands are batched into chunks.
    pub chunk: ChunkPolicy,
    /// How this campaign's jobs share a node with other receptors'.
    pub shard: ShardPolicy,
    /// Ranking size retained by top-k accumulators.
    pub top_k: usize,
    /// Grid lattice; derived from the receptor geometry when `None`.
    pub grid_dims: Option<GridDims>,
}

impl Default for CampaignSpec {
    /// The default campaign is what `Campaign::builder().build()` yields.
    fn default() -> Self {
        Campaign::builder()
            .build()
            .expect("the default campaign is valid by construction")
    }
}

impl CampaignSpec {
    /// Start building a campaign (same as [`Campaign::builder`]).
    pub fn builder() -> CampaignBuilder {
        Campaign::builder()
    }

    /// Lower the spec to the kernel-level [`DockParams`] it describes.
    pub fn dock_params(&self) -> DockParams {
        DockParams {
            ga: self.ga,
            seed: self.seed,
            backend: self.backend.resolve(),
            search_radius: self.search_radius,
            local_search: self.local_search,
        }
    }

    /// The SIMD level grids are built (and cache-keyed) at.
    pub fn grid_level(&self) -> SimdLevel {
        self.backend.grid_level()
    }

    /// The lattice this campaign docks on: the pinned `grid_dims`, or
    /// the standard receptor-derived screening lattice.
    pub fn dims_for(&self, receptor: &Molecule) -> GridDims {
        self.grid_dims.unwrap_or_else(|| {
            let extent = (receptor.radius() + 3.0).clamp(8.0, 14.0);
            GridDims::centered(receptor.centroid(), extent, 0.55)
        })
    }

    /// A fresh chunk sizer for this campaign's [`ChunkPolicy`].
    pub fn chunk_sizer(&self) -> ChunkSizer {
        ChunkSizer::new(self.chunk)
    }
}

/// Entry point to the builder (`Campaign::builder()` reads naturally at
/// call sites; the built value is a [`CampaignSpec`]).
pub struct Campaign;

impl Campaign {
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::default()
    }
}

/// Builder for [`CampaignSpec`] — the only validated construction path.
#[derive(Clone, Debug, Default)]
pub struct CampaignBuilder {
    name: String,
    ga: Option<GaParams>,
    seed: Option<u64>,
    search_radius: Option<f32>,
    local_search: Option<SolisWetsParams>,
    backend: BackendPolicy,
    stop: StopPolicy,
    chunk: ChunkPolicy,
    shard: ShardPolicy,
    top_k: Option<usize>,
    grid_dims: Option<GridDims>,
}

impl CampaignBuilder {
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replace the whole GA configuration.
    pub fn ga(mut self, ga: GaParams) -> Self {
        self.ga = Some(ga);
        self
    }

    /// Individuals per generation (keeps the other GA defaults).
    pub fn population(mut self, population: usize) -> Self {
        let mut ga = self.ga.unwrap_or_default();
        ga.population = population;
        self.ga = Some(ga);
        self
    }

    /// Generations to run (keeps the other GA defaults).
    pub fn generations(mut self, generations: usize) -> Self {
        let mut ga = self.ga.unwrap_or_default();
        ga.generations = generations;
        self.ga = Some(ga);
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Half-side of the translation search box (Å).
    pub fn search_radius(mut self, radius: f32) -> Self {
        self.search_radius = Some(radius);
        self
    }

    /// Enable Solis–Wets Lamarckian refinement.
    pub fn local_search(mut self, params: SolisWetsParams) -> Self {
        self.local_search = Some(params);
        self
    }

    pub fn backend(mut self, policy: BackendPolicy) -> Self {
        self.backend = policy;
        self
    }

    /// Shorthand for [`BackendPolicy::Pinned`].
    pub fn pin_level(self, level: SimdLevel) -> Self {
        self.backend(BackendPolicy::Pinned(level))
    }

    pub fn stop(mut self, policy: StopPolicy) -> Self {
        self.stop = policy;
        self
    }

    pub fn chunk(mut self, policy: ChunkPolicy) -> Self {
        self.chunk = policy;
        self
    }

    pub fn shard(mut self, policy: ShardPolicy) -> Self {
        self.shard = policy;
        self
    }

    /// Shorthand for [`ShardPolicy::Weighted`].
    pub fn shard_weight(self, weight: f32) -> Self {
        self.shard(ShardPolicy::Weighted(weight))
    }

    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Pin the grid lattice instead of deriving it from the receptor.
    pub fn grid_dims(mut self, dims: GridDims) -> Self {
        self.grid_dims = Some(dims);
        self
    }

    /// Validate and produce the [`CampaignSpec`].
    pub fn build(self) -> Result<CampaignSpec, CampaignError> {
        let ga = self.ga.unwrap_or_default();
        if ga.population < 2 {
            return Err(CampaignError::InvalidGa(format!(
                "population {} must hold at least 2 individuals",
                ga.population
            )));
        }
        if ga.generations == 0 {
            return Err(CampaignError::InvalidGa(
                "zero generations evaluates nothing".into(),
            ));
        }
        if ga.tournament == 0 {
            return Err(CampaignError::InvalidGa(
                "tournament selection needs at least 1 contestant".into(),
            ));
        }
        if ga.elitism >= ga.population {
            return Err(CampaignError::InvalidGa(format!(
                "elitism {} must be smaller than the population {}",
                ga.elitism, ga.population
            )));
        }
        if let Some(r) = self.search_radius {
            if !r.is_finite() || r <= 0.0 {
                return Err(CampaignError::InvalidRadius(r));
            }
        }
        let top_k = self.top_k.unwrap_or(10);
        if top_k == 0 {
            return Err(CampaignError::InvalidTopK(0));
        }
        match self.chunk {
            ChunkPolicy::Fixed(0) => {
                return Err(CampaignError::InvalidChunk(
                    "fixed chunk size of 0 makes no progress".into(),
                ))
            }
            ChunkPolicy::Fixed(n) if n > MAX_CHUNK => {
                return Err(CampaignError::InvalidChunk(format!(
                    "fixed chunk size {n} exceeds the ceiling of {MAX_CHUNK} \
                     (bounds checkpoint loss on a crash)"
                )))
            }
            ChunkPolicy::Adaptive { target } if target.is_zero() => {
                return Err(CampaignError::InvalidChunk(
                    "adaptive target duration must be positive".into(),
                ))
            }
            _ => {}
        }
        match self.stop {
            StopPolicy::MaxEvaluations(0) => {
                return Err(CampaignError::InvalidStop(
                    "an evaluation budget of 0 stops before any work".into(),
                ))
            }
            StopPolicy::Deadline(d) if d.is_zero() => {
                return Err(CampaignError::InvalidStop(
                    "a zero deadline stops before any work".into(),
                ))
            }
            StopPolicy::RankingStable { window, epsilon } => {
                if window == 0 {
                    return Err(CampaignError::InvalidStop(
                        "ranking-stability window must be at least 1 check".into(),
                    ));
                }
                if !epsilon.is_finite() || epsilon < 0.0 {
                    return Err(CampaignError::InvalidStop(format!(
                        "ranking-stability epsilon {epsilon} must be finite and non-negative"
                    )));
                }
            }
            _ => {}
        }
        if let ShardPolicy::Weighted(w) = self.shard {
            if !w.is_finite() || w <= 0.0 {
                return Err(CampaignError::InvalidShard(format!(
                    "shard weight {w} must be finite and positive"
                )));
            }
            if w > MAX_SHARD_WEIGHT {
                return Err(CampaignError::InvalidShard(format!(
                    "shard weight {w} exceeds the ceiling of {MAX_SHARD_WEIGHT} \
                     (use ShardPolicy::SingleQueue to opt out of fairness)"
                )));
            }
        }
        if !self.backend.is_supported() {
            return Err(CampaignError::UnsupportedBackend(format!(
                "{:?}",
                self.backend
            )));
        }
        Ok(CampaignSpec {
            name: self.name,
            ga,
            seed: self.seed.unwrap_or(0x6d75_446f_636b),
            search_radius: self.search_radius,
            local_search: self.local_search,
            backend: self.backend,
            stop: self.stop,
            chunk: self.chunk,
            shard: self.shard,
            top_k,
            grid_dims: self.grid_dims,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_mol::Vec3;

    #[test]
    fn default_build_matches_legacy_defaults() {
        let spec = Campaign::builder().build().unwrap();
        let params = spec.dock_params();
        let legacy = DockParams::default();
        assert_eq!(params.seed, legacy.seed);
        assert_eq!(params.ga, legacy.ga);
        assert_eq!(params.backend, legacy.backend);
        assert_eq!(spec.top_k, 10);
        assert_eq!(spec.chunk, ChunkPolicy::Fixed(16));
        assert_eq!(spec.stop, StopPolicy::Complete);
        assert_eq!(spec.shard, ShardPolicy::FairShare);
    }

    #[test]
    fn shard_policy_weights_and_participation() {
        assert_eq!(ShardPolicy::FairShare.weight(), 1.0);
        assert_eq!(ShardPolicy::Weighted(2.5).weight(), 2.5);
        assert_eq!(ShardPolicy::SingleQueue.weight(), 1.0);
        assert!(ShardPolicy::FairShare.is_sharded());
        assert!(ShardPolicy::Weighted(3.0).is_sharded());
        assert!(!ShardPolicy::SingleQueue.is_sharded());

        let spec = Campaign::builder().shard_weight(4.0).build().unwrap();
        assert_eq!(spec.shard, ShardPolicy::Weighted(4.0));
        for bad in [0.0, -1.0, f32::NAN, f32::INFINITY, MAX_SHARD_WEIGHT * 2.0] {
            assert!(
                matches!(
                    Campaign::builder().shard_weight(bad).build(),
                    Err(CampaignError::InvalidShard(_))
                ),
                "weight {bad} must be rejected"
            );
        }
        assert!(
            Campaign::builder()
                .shard_weight(MAX_SHARD_WEIGHT)
                .build()
                .is_ok(),
            "the ceiling itself is valid"
        );
        assert!(Campaign::builder()
            .shard(ShardPolicy::SingleQueue)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_bad_values_with_typed_errors() {
        assert_eq!(
            Campaign::builder().top_k(0).build().unwrap_err(),
            CampaignError::InvalidTopK(0)
        );
        assert!(matches!(
            Campaign::builder().chunk(ChunkPolicy::Fixed(0)).build(),
            Err(CampaignError::InvalidChunk(_))
        ));
        assert!(matches!(
            Campaign::builder()
                .chunk(ChunkPolicy::Fixed(MAX_CHUNK + 1))
                .build(),
            Err(CampaignError::InvalidChunk(_))
        ));
        assert!(
            Campaign::builder()
                .chunk(ChunkPolicy::Fixed(MAX_CHUNK))
                .build()
                .is_ok(),
            "the ceiling itself is valid"
        );
        assert!(matches!(
            Campaign::builder()
                .chunk(ChunkPolicy::Adaptive {
                    target: Duration::ZERO
                })
                .build(),
            Err(CampaignError::InvalidChunk(_))
        ));
        assert_eq!(
            Campaign::builder().search_radius(-1.0).build().unwrap_err(),
            CampaignError::InvalidRadius(-1.0)
        );
        assert!(matches!(
            Campaign::builder().search_radius(f32::NAN).build(),
            Err(CampaignError::InvalidRadius(_))
        ));
        assert!(matches!(
            Campaign::builder().population(1).build(),
            Err(CampaignError::InvalidGa(_))
        ));
        assert!(matches!(
            Campaign::builder().generations(0).build(),
            Err(CampaignError::InvalidGa(_))
        ));
        assert!(matches!(
            Campaign::builder()
                .stop(StopPolicy::MaxEvaluations(0))
                .build(),
            Err(CampaignError::InvalidStop(_))
        ));
        assert!(matches!(
            Campaign::builder()
                .stop(StopPolicy::RankingStable {
                    window: 0,
                    epsilon: 0.1
                })
                .build(),
            Err(CampaignError::InvalidStop(_))
        ));
        assert!(matches!(
            Campaign::builder()
                .stop(StopPolicy::RankingStable {
                    window: 2,
                    epsilon: f32::NAN
                })
                .build(),
            Err(CampaignError::InvalidStop(_))
        ));
    }

    #[test]
    fn elitism_must_fit_population() {
        let ga = GaParams {
            population: 4,
            elitism: 4,
            ..Default::default()
        };
        assert!(matches!(
            Campaign::builder().ga(ga).build(),
            Err(CampaignError::InvalidGa(_))
        ));
    }

    #[test]
    fn backend_policy_resolution_and_grid_levels() {
        assert_eq!(
            BackendPolicy::Pinned(SimdLevel::Scalar).resolve(),
            Backend::Explicit(SimdLevel::Scalar)
        );
        assert_eq!(
            BackendPolicy::Fixed(Backend::Reference).grid_level(),
            SimdLevel::Scalar
        );
        assert_eq!(
            BackendPolicy::Pinned(SimdLevel::Scalar).grid_level(),
            SimdLevel::Scalar
        );
        // Detect follows the single auto-resolution point (which itself
        // honors a MUDOCK_BACKEND env pin, so this holds in CI's
        // backend matrix too).
        assert_eq!(BackendPolicy::Detect.resolve(), Backend::auto());
        match Backend::auto() {
            Backend::Explicit(l) => assert_eq!(BackendPolicy::Detect.grid_level(), l),
            _ => assert_eq!(BackendPolicy::Detect.grid_level(), SimdLevel::Scalar),
        }
        // Every available level is buildable.
        for l in SimdLevel::available() {
            assert!(Campaign::builder().pin_level(l).build().is_ok());
        }
    }

    #[test]
    fn pinned_levels_key_their_own_grids() {
        let spec = Campaign::builder()
            .pin_level(SimdLevel::Scalar)
            .build()
            .unwrap();
        assert_eq!(spec.grid_level(), SimdLevel::Scalar);
        assert_eq!(
            spec.dock_params().backend,
            Backend::Explicit(SimdLevel::Scalar)
        );
    }

    #[test]
    fn dims_for_prefers_pinned_lattice() {
        let rec = mudock_molio::synthetic_receptor(3, 40, 5.0);
        let pinned = GridDims::centered(Vec3::ZERO, 9.0, 0.75);
        let spec = Campaign::builder().grid_dims(pinned).build().unwrap();
        assert_eq!(spec.dims_for(&rec).npts, pinned.npts);
        let derived = Campaign::builder().build().unwrap().dims_for(&rec);
        assert!(derived.npts[0] > 0);
    }

    #[test]
    fn chunk_sizer_fixed_is_constant() {
        let mut s = ChunkSizer::new(ChunkPolicy::Fixed(7));
        assert_eq!(s.next_size(), 7);
        s.observe(7, Duration::from_secs(100));
        assert_eq!(s.next_size(), 7, "fixed sizing ignores measurements");
    }

    #[test]
    fn chunk_sizer_adapts_to_measured_cost() {
        let mut s = ChunkSizer::new(ChunkPolicy::Adaptive {
            target: Duration::from_secs(1),
        });
        assert_eq!(s.next_size(), ADAPTIVE_PROBE, "first chunk probes");
        // 10 ms per ligand → ~100 ligands per 1 s chunk.
        s.observe(
            ADAPTIVE_PROBE,
            Duration::from_millis(10 * ADAPTIVE_PROBE as u64),
        );
        assert_eq!(s.next_size(), 100);
        // Cost doubles → chunk shrinks (EWMA: between old and new rate).
        s.observe(100, Duration::from_secs(2));
        let next = s.next_size();
        assert!(next < 100 && next > 10, "EWMA-adapted size, got {next}");
    }

    #[test]
    fn chunk_sizer_clamps_to_sane_bounds() {
        let mut s = ChunkSizer::new(ChunkPolicy::Adaptive {
            target: Duration::from_nanos(1),
        });
        s.observe(10, Duration::from_secs(10));
        assert_eq!(s.next_size(), 1, "never below one ligand");
        let mut s = ChunkSizer::new(ChunkPolicy::Adaptive {
            target: Duration::from_secs(3600),
        });
        s.observe(1000, Duration::from_nanos(1));
        assert_eq!(s.next_size(), MAX_CHUNK, "never above MAX_CHUNK");
    }

    #[test]
    fn stop_check_honors_budgets() {
        let policy = StopPolicy::MaxEvaluations(100);
        let mut check = StopCheck::new();
        assert!(!check.should_stop(&policy, 99, &[]));
        assert!(check.should_stop(&policy, 100, &[]));

        let mut check = StopCheck::new();
        assert!(!check.should_stop(&StopPolicy::Deadline(Duration::from_secs(3600)), 0, &[]));
        assert!(check.should_stop(&StopPolicy::Deadline(Duration::ZERO), 0, &[]));

        let mut check = StopCheck::new();
        assert!(!check.should_stop(&StopPolicy::Complete, u64::MAX, &[]));
    }

    #[test]
    fn ranking_stability_needs_window_consecutive_stable_checks() {
        let policy = StopPolicy::RankingStable {
            window: 2,
            epsilon: 0.05,
        };
        let mut check = StopCheck::new();
        let a = [(-5.0, 0), (-3.0, 4)];
        let moved = [(-6.0, 2), (-5.0, 0)];
        assert!(
            !check.should_stop(&policy, 0, &a),
            "first check has no prior"
        );
        assert!(!check.should_stop(&policy, 0, &moved), "ranking moved");
        assert!(!check.should_stop(&policy, 0, &moved), "stable once");
        assert!(check.should_stop(&policy, 0, &moved), "stable twice → stop");
    }

    #[test]
    fn ranking_stability_tolerates_epsilon_and_resets_on_growth() {
        let policy = StopPolicy::RankingStable {
            window: 1,
            epsilon: 0.1,
        };
        let mut check = StopCheck::new();
        assert!(!check.should_stop(&policy, 0, &[(-5.0, 0)]));
        // Within epsilon → stable.
        assert!(check.should_stop(&policy, 0, &[(-5.08, 0)]));

        let mut check = StopCheck::new();
        assert!(!check.should_stop(&policy, 0, &[(-5.0, 0)]));
        // The ranking grew a new entry → not stable.
        assert!(!check.should_stop(&policy, 0, &[(-5.0, 0), (-1.0, 3)]));
    }

    #[test]
    fn empty_rankings_never_count_as_stable() {
        let policy = StopPolicy::RankingStable {
            window: 1,
            epsilon: 1.0,
        };
        let mut check = StopCheck::new();
        assert!(!check.should_stop(&policy, 0, &[]));
        assert!(
            !check.should_stop(&policy, 0, &[]),
            "an empty ranking must not stop a campaign that found nothing yet"
        );
    }

    #[test]
    fn campaign_error_messages_are_actionable() {
        for (err, needle) in [
            (CampaignError::InvalidTopK(0), "top-k"),
            (CampaignError::InvalidRadius(-2.0), "radius"),
            (
                CampaignError::UnsupportedBackend("avx512".into()),
                "not supported",
            ),
        ] {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
    }
}
