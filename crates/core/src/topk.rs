//! Incremental top-k selection over streaming scores.
//!
//! Virtual screening wants the `k` best-scoring ligands out of millions;
//! collecting every result and sorting afterwards costs O(n log n) memory
//! and time and cannot stream. [`TopK`] keeps a bounded max-heap of the
//! `k` best entries seen so far: O(k) memory, O(log k) per insert, and a
//! rank list available at any point of the stream. Both
//! [`ScreenSummary::top_k`](crate::screen::ScreenSummary::top_k) and the
//! `mudock-serve` result sink are built on it.
//!
//! Ordering is total and deterministic: lower score ranks first; equal
//! scores rank in insertion order (earlier wins). Non-finite scores are
//! rejected — a NaN from a degenerate pose must not poison the heap.

use std::collections::BinaryHeap;

/// One retained entry: score plus an insertion sequence number that
/// breaks ties deterministically.
#[derive(Clone, Debug)]
struct Entry<T> {
    score: f32,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: the *worst* retained entry sits at the top. Worse =
        // higher score, or same score inserted later.
        self.score
            .total_cmp(&other.score)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Bounded accumulator of the `k` lowest-scoring items of a stream.
#[derive(Clone, Debug)]
pub struct TopK<T> {
    k: usize,
    seq: u64,
    heap: BinaryHeap<Entry<T>>,
}

impl<T> TopK<T> {
    /// Accumulator retaining the `k` best (lowest-score) items.
    pub fn new(k: usize) -> TopK<T> {
        TopK {
            k,
            seq: 0,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// The `k` this accumulator retains.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Entries currently retained (`min(k, items offered so far)`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current cutoff: the score a candidate must beat once the
    /// accumulator is full. `None` while fewer than `k` entries are held.
    pub fn threshold(&self) -> Option<f32> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|e| e.score)
        }
    }

    /// Offer one scored item; returns whether it was retained. Non-finite
    /// scores are always rejected.
    pub fn push(&mut self, score: f32, item: T) -> bool {
        if !score.is_finite() || self.k == 0 {
            return false;
        }
        let seq = self.seq;
        self.seq += 1;
        if self.heap.len() < self.k {
            self.heap.push(Entry { score, seq, item });
            return true;
        }
        // Full: replace the worst entry iff the candidate beats it. A tie
        // loses — the incumbent was inserted earlier.
        let worst = self.heap.peek().expect("k > 0 and heap is full");
        if score.total_cmp(&worst.score).is_lt() {
            self.heap.pop();
            self.heap.push(Entry { score, seq, item });
            true
        } else {
            false
        }
    }

    /// Fold another accumulator in (e.g. per-shard partial top-k).
    /// `other`'s entries rank after `self`'s on exact score ties.
    pub fn merge(&mut self, other: TopK<T>) {
        let mut entries: Vec<Entry<T>> = other.heap.into_vec();
        entries.sort_unstable_by_key(|a| a.seq);
        for e in entries {
            self.push(e.score, e.item);
        }
    }

    /// Consume into `(score, item)` pairs, best first.
    pub fn into_sorted(self) -> Vec<(f32, T)> {
        let mut entries = self.heap.into_vec();
        entries.sort_unstable_by(|a, b| a.score.total_cmp(&b.score).then(a.seq.cmp(&b.seq)));
        entries.into_iter().map(|e| (e.score, e.item)).collect()
    }
}

/// Rebuild a global top-k ranking from per-partition partial rankings —
/// the gather side of a scatter/gather screen (cluster sub-jobs,
/// per-shard partials).
///
/// Each element of `parts` must be a partial ranking best-first (as
/// [`TopK::into_sorted`] emits) computed over one **contiguous window**
/// of the input stream with the same `k`, and `parts` must arrive in
/// stream order (ascending window position). Under those conditions the
/// result is bit-identical — score bits *and* tie order — to running one
/// [`TopK`] over the unpartitioned stream:
///
/// * every globally-retained entry survives its own partition's partial
///   (the global top-k is a subset of the union of partial top-k's),
/// * within a partial, equal scores are already ordered by ascending
///   stream position, and partials are folded in stream order, so the
///   re-push sees equal scores in ascending global position — exactly
///   the single-stream insertion order that [`TopK`]'s earlier-wins tie
///   rule keys on.
pub fn merge_ranked_partials<T>(
    k: usize,
    parts: impl IntoIterator<Item = Vec<(f32, T)>>,
) -> Vec<(f32, T)> {
    let mut merged = TopK::new(k);
    for part in parts {
        for (score, item) in part {
            merged.push(score, item);
        }
    }
    merged.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_k_best_in_order() {
        let mut t = TopK::new(3);
        for (i, s) in [5.0f32, -1.0, 3.0, -4.0, 2.0, 0.0].into_iter().enumerate() {
            t.push(s, i);
        }
        let ranked = t.into_sorted();
        assert_eq!(
            ranked.iter().map(|&(_, i)| i).collect::<Vec<_>>(),
            vec![3, 1, 5]
        );
        assert_eq!(ranked[0].0, -4.0);
    }

    #[test]
    fn ties_prefer_earlier_insertion() {
        let mut t = TopK::new(2);
        assert!(t.push(1.0, "a"));
        assert!(t.push(1.0, "b"));
        // Equal to the current worst → rejected; the incumbents stay.
        assert!(!t.push(1.0, "c"));
        let ranked = t.into_sorted();
        assert_eq!(
            ranked.iter().map(|&(_, x)| x).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn rejects_non_finite_scores() {
        let mut t = TopK::new(4);
        assert!(!t.push(f32::NAN, 0));
        assert!(!t.push(f32::INFINITY, 1));
        assert!(!t.push(f32::NEG_INFINITY, 2));
        assert!(t.push(-1.0e30, 3));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn k_zero_and_underfull() {
        let mut z: TopK<u8> = TopK::new(0);
        assert!(!z.push(0.0, 1));
        assert!(z.into_sorted().is_empty());

        let mut t = TopK::new(10);
        t.push(2.0, "x");
        t.push(1.0, "y");
        assert_eq!(t.len(), 2);
        assert_eq!(t.threshold(), None);
        let ranked = t.into_sorted();
        assert_eq!(
            ranked.iter().map(|&(_, x)| x).collect::<Vec<_>>(),
            vec!["y", "x"]
        );
    }

    #[test]
    fn threshold_tracks_worst_retained() {
        let mut t = TopK::new(2);
        t.push(5.0, ());
        t.push(3.0, ());
        assert_eq!(t.threshold(), Some(5.0));
        t.push(1.0, ());
        assert_eq!(t.threshold(), Some(3.0));
    }

    #[test]
    fn merge_matches_single_stream() {
        let scores = [4.0f32, -2.0, 7.0, -2.0, 0.5, 9.0, -3.25, 1.0];
        let mut whole = TopK::new(4);
        for (i, &s) in scores.iter().enumerate() {
            whole.push(s, i);
        }
        let mut left = TopK::new(4);
        let mut right = TopK::new(4);
        for (i, &s) in scores.iter().enumerate() {
            if i < 4 {
                left.push(s, i);
            } else {
                right.push(s, i);
            }
        }
        left.merge(right);
        assert_eq!(
            whole
                .into_sorted()
                .iter()
                .map(|&(s, i)| (s.to_bits(), i))
                .collect::<Vec<_>>(),
            left.into_sorted()
                .iter()
                .map(|&(s, i)| (s.to_bits(), i))
                .collect::<Vec<_>>()
        );
    }
}
