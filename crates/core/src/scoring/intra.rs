//! Intramolecular (intra-energy) scoring — Algorithm 2, lines 10–16.
//!
//! For every non-excluded atom pair within the 8 Å cutoff: electrostatic,
//! van der Waals / H-bond, and desolvation contributions. This is the
//! paper's *compute-bound* kernel: heavy on FMA chains, reciprocals and
//! exponentials, with gathers only for the pair coordinates.
//!
//! Three paths with identical semantics:
//!
//! * [`intra_energy_reference`] — scalar with `libm` math (`f32::exp`).
//!   Library calls in the loop body are exactly what blocks loop
//!   vectorization when no vector math library exists (the paper's
//!   GCC-on-ARM case).
//! * [`intra_energy_kernel`] at [`mudock_simd::Scalar`] — the same
//!   arithmetic with inlinable polynomial math: what a compiler can
//!   auto-vectorize when a vector math library *is* available.
//! * [`intra_energy_kernel`] at SSE2/AVX2/AVX-512 — explicit vectorization
//!   (the Highway arm).

use mudock_ff::params::NB_CUTOFF;
use mudock_ff::terms::{ECLAMP, RMIN};
use mudock_ff::vterms;
use mudock_mol::ConformSoA;
use mudock_simd::{dispatch, Simd, SimdLevel};

use super::pairs::PairsSoA;

/// Scalar reference with `libm` math calls.
pub fn intra_energy_reference(conf: &ConformSoA, pairs: &PairsSoA) -> f32 {
    let cutoff2 = NB_CUTOFF * NB_CUTOFF;
    let mut total = 0.0f32;
    for k in 0..pairs.n {
        let i = pairs.i[k] as usize;
        let j = pairs.j[k] as usize;
        let dx = conf.x[i] - conf.x[j];
        let dy = conf.y[i] - conf.y[j];
        let dz = conf.z[i] - conf.z[j];
        let r2 = dx * dx + dy * dy + dz * dz;
        if r2 > cutoff2 {
            continue;
        }
        let r = r2.sqrt().max(RMIN);
        // vdW / H-bond with smoothing and clamp.
        let rs = mudock_ff::terms::smooth_r(r, pairs.rij[k]);
        let inv_r2 = 1.0 / (rs * rs);
        let inv_r6 = inv_r2 * inv_r2 * inv_r2;
        let inv_r10 = inv_r6 * inv_r2 * inv_r2;
        let inv_r12 = inv_r6 * inv_r6;
        let vdw =
            (pairs.c12[k] * inv_r12 - pairs.c6[k] * inv_r6 - pairs.c10[k] * inv_r10).min(ECLAMP);
        // Electrostatics with distance-dependent dielectric.
        let elec = pairs.qq[k] / (mudock_ff::terms::dielectric(r) * r);
        // Desolvation.
        let sigma2 = 2.0 * mudock_ff::params::DESOLV_SIGMA * mudock_ff::params::DESOLV_SIGMA;
        let des = pairs.sv[k] * (-r2 / sigma2).exp();
        total += vdw + elec + des;
    }
    total
}

/// Width-generic intra-energy kernel (see module docs for the three roles
/// it plays depending on the instantiating backend).
#[inline(always)]
pub fn intra_energy_kernel<S: Simd>(s: S, conf: &ConformSoA, pairs: &PairsSoA) -> f32 {
    let cutoff2 = s.splat(NB_CUTOFF * NB_CUTOFF);
    let rmin = s.splat(RMIN);
    let zero = s.zero();
    let mut acc = s.zero();
    let len = pairs.len_padded();
    debug_assert_eq!(len % S::LANES, 0);

    let mut k = 0;
    while k < len {
        let vi = s.load_i32(&pairs.i[k..]);
        let vj = s.load_i32(&pairs.j[k..]);
        // SAFETY: pair indices are built from the molecule topology and are
        // always < conf.n <= padded array length.
        let (xi, yi, zi, xj, yj, zj) = unsafe {
            (
                s.gather_unchecked(&conf.x, vi),
                s.gather_unchecked(&conf.y, vi),
                s.gather_unchecked(&conf.z, vi),
                s.gather_unchecked(&conf.x, vj),
                s.gather_unchecked(&conf.y, vj),
                s.gather_unchecked(&conf.z, vj),
            )
        };
        let dx = s.sub(xi, xj);
        let dy = s.sub(yi, yj);
        let dz = s.sub(zi, zj);
        let r2 = s.mul_add(dz, dz, s.mul_add(dy, dy, s.mul(dx, dx)));
        let in_cut = s.le(r2, cutoff2);
        if !s.any(in_cut) {
            k += S::LANES;
            continue;
        }
        let r = s.max(s.sqrt(r2), rmin);

        let vdw = vterms::vdw_hbond(
            s,
            r,
            s.load(&pairs.rij[k..]),
            s.load(&pairs.c12[k..]),
            s.load(&pairs.c6[k..]),
            s.load(&pairs.c10[k..]),
        );
        let elec = vterms::electrostatic(s, s.load(&pairs.qq[k..]), r);
        let des = vterms::desolvation(s, s.load(&pairs.sv[k..]), r2);
        let e = s.add(s.add(vdw, elec), des);
        acc = s.add(acc, s.select(in_cut, e, zero));
        k += S::LANES;
    }
    s.reduce_add(acc)
}

/// Dispatch the intra kernel at a runtime-selected level.
pub fn intra_energy_simd(level: SimdLevel, conf: &ConformSoA, pairs: &PairsSoA) -> f32 {
    dispatch!(level, |s| intra_energy_kernel(s, conf, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_ff::params::PairTable;
    use mudock_ff::terms::pair_energy;
    use mudock_mol::{Molecule, Topology};
    use mudock_molio::{synthetic_ligand, LigandSpec};

    fn prep(seed: u64) -> (Molecule, Topology, ConformSoA, PairsSoA) {
        let m = synthetic_ligand(
            seed,
            LigandSpec {
                heavy_atoms: 25,
                torsions: 5,
            },
        );
        let topo = Topology::build(&m);
        let conf = ConformSoA::from_molecule(&m);
        let pairs = PairsSoA::build(&m, &topo, &PairTable::new());
        (m, topo, conf, pairs)
    }

    #[test]
    fn reference_matches_force_field_pair_sum() {
        // Independent ground truth: sum ff::pair_energy over the topology
        // pair list with the same cutoff.
        let (m, topo, conf, pairs) = prep(3);
        let table = PairTable::new();
        let mut want = 0.0f32;
        for &(i, j) in &topo.pairs {
            let a = &m.atoms[i as usize];
            let b = &m.atoms[j as usize];
            let r = conf.pos(i as usize).distance(conf.pos(j as usize));
            if r * r > NB_CUTOFF * NB_CUTOFF {
                continue;
            }
            want += pair_energy(&table, a.ty, a.charge, b.ty, b.charge, r).total();
        }
        let got = intra_energy_reference(&conf, &pairs);
        assert!(
            (got - want).abs() < 1e-3 * want.abs().max(1.0),
            "{got} vs {want}"
        );
    }

    #[test]
    fn kernel_matches_reference_all_levels() {
        for seed in [1u64, 7, 42] {
            let (_m, _t, conf, pairs) = prep(seed);
            let want = intra_energy_reference(&conf, &pairs);
            for level in SimdLevel::available() {
                let got = intra_energy_simd(level, &conf, &pairs);
                assert!(
                    (got - want).abs() < 2e-3 * want.abs().max(1.0),
                    "seed {seed} {level}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn empty_pair_list_scores_zero() {
        let (_m, _t, conf, _p) = prep(5);
        let empty = PairsSoA::build(
            &Molecule {
                name: String::new(),
                atoms: vec![],
                bonds: vec![],
            },
            &Topology::default(),
            &PairTable::new(),
        );
        assert_eq!(intra_energy_reference(&conf, &empty), 0.0);
        for level in SimdLevel::available() {
            assert_eq!(intra_energy_simd(level, &conf, &empty), 0.0, "{level}");
        }
    }

    #[test]
    fn far_apart_pairs_score_zero() {
        // Stretch the molecule far beyond the cutoff: only excluded/close
        // pairs remain, the rest mask out.
        let (_m, _t, mut conf, pairs) = prep(9);
        for i in 0..conf.n {
            conf.x[i] += 100.0 * i as f32; // > 8 Å between every pair
        }
        let want = intra_energy_reference(&conf, &pairs);
        assert_eq!(want, 0.0);
        for level in SimdLevel::available() {
            assert_eq!(intra_energy_simd(level, &conf, &pairs), 0.0, "{level}");
        }
    }
}
