//! Intermolecular (inter-energy) scoring — Algorithm 2, lines 4–9, after
//! AutoGrid memoization: per ligand atom, one trilinear lookup in the
//! atom-type map plus charge-scaled lookups in the electrostatic and
//! desolvation maps.
//!
//! This is the paper's *memory-bound* kernel: 24 gathers per atom-vector
//! into maps that are megabytes large, stressing cache hierarchy and
//! memory bandwidth (Sections V and VIII-b).
//!
//! Atoms outside the grid box are clamped to it and charged a linear
//! penalty per Å of excursion, keeping the GA inside the sampled region.

use mudock_grids::{GridSet, DESOLV_MAP, ELEC_MAP};
use mudock_mol::{AtomStatics, ConformSoA};
use mudock_simd::{dispatch, Simd, SimdLevel};

/// Penalty slope for atoms outside the grid box (kcal/mol per Å).
pub const OUT_OF_BOX_PENALTY: f32 = 1_000.0;

/// One recorded map access (for the cache-model trace in `mudock-archsim`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridAccess {
    /// Map slot (atom type index, `ELEC_MAP`, or `DESOLV_MAP`).
    pub map: u16,
    /// Linear cell index of the 000 corner of the trilinear fetch.
    pub cell: u32,
}

/// Scalar reference implementation over [`mudock_grids::trilinear`].
pub fn inter_energy_reference(gs: &GridSet, conf: &ConformSoA, st: &AtomStatics) -> f32 {
    inter_reference_impl(gs, conf, st, &mut None)
}

/// Scalar reference that also records every map access — used by the
/// architecture model to drive its cache simulator with the *actual*
/// lookup stream of the docking run.
pub fn inter_energy_traced(
    gs: &GridSet,
    conf: &ConformSoA,
    st: &AtomStatics,
    trace: &mut Vec<GridAccess>,
) -> f32 {
    let mut t = Some(std::mem::take(trace));
    let e = inter_reference_impl(gs, conf, st, &mut t);
    *trace = t.unwrap();
    e
}

fn inter_reference_impl(
    gs: &GridSet,
    conf: &ConformSoA,
    st: &AtomStatics,
    trace: &mut Option<Vec<GridAccess>>,
) -> f32 {
    let dims = gs.dims;
    let mut total = 0.0f32;
    for i in 0..conf.n {
        let p = conf.pos(i);
        let ty = st.ty[i] as usize;
        let e_t = gs.sample(ty, p);
        let e_e = st.charge[i] * gs.sample(ELEC_MAP, p);
        let e_d = st.charge[i].abs() * gs.sample(DESOLV_MAP, p);
        let pen = OUT_OF_BOX_PENALTY * dims.distance_outside(p);
        total += e_t + e_e + e_d + pen;
        if let Some(tr) = trace.as_mut() {
            let cell = cell000(gs, p);
            tr.push(GridAccess {
                map: ty as u16,
                cell,
            });
            tr.push(GridAccess {
                map: ELEC_MAP as u16,
                cell,
            });
            tr.push(GridAccess {
                map: DESOLV_MAP as u16,
                cell,
            });
        }
    }
    total
}

/// Linear index of the 000 corner the trilinear sample of `p` touches.
fn cell000(gs: &GridSet, p: mudock_mol::Vec3) -> u32 {
    let d = &gs.dims;
    let g = d.to_grid_units(p);
    let ix = (g.x.clamp(0.0, (d.npts[0] - 1) as f32) as u32).min(d.npts[0] - 2);
    let iy = (g.y.clamp(0.0, (d.npts[1] - 1) as f32) as u32).min(d.npts[1] - 2);
    let iz = (g.z.clamp(0.0, (d.npts[2] - 1) as f32) as u32).min(d.npts[2] - 2);
    d.linear(ix, iy, iz) as u32
}

/// Width-generic inter-energy kernel: vectorized trilinear interpolation
/// with gathers into the concatenated map buffer.
#[inline(always)]
pub fn inter_energy_kernel<S: Simd>(
    s: S,
    gs: &GridSet,
    conf: &ConformSoA,
    st: &AtomStatics,
) -> f32 {
    let dims = &gs.dims;
    let stride = gs.stride() as f32;
    // All f32 index arithmetic must stay exact: every integer involved has
    // to fit the 24-bit mantissa.
    debug_assert!((gs.data.len() as f64) < (1u64 << 24) as f64);

    let inv_sp = s.splat(1.0 / dims.spacing);
    let (ox, oy, oz) = (
        s.splat(dims.origin.x),
        s.splat(dims.origin.y),
        s.splat(dims.origin.z),
    );
    let (nx, ny, nz) = (dims.npts[0], dims.npts[1], dims.npts[2]);
    // Upper clamp slightly inside the last cell so trunc() lands on n-2.
    let hx = s.splat((nx - 1) as f32 - 1e-4);
    let hy = s.splat((ny - 1) as f32 - 1e-4);
    let hz = s.splat((nz - 1) as f32 - 1e-4);
    let (bx, by, bz) = (
        s.splat((nx - 1) as f32),
        s.splat((ny - 1) as f32),
        s.splat((nz - 1) as f32),
    );
    let zero = s.zero();
    let nxf = s.splat(nx as f32);
    let nyf = s.splat(ny as f32);
    let sy = nx as i32;
    let sz = (nx * ny) as i32;
    let elec_base = s.splat_i32((ELEC_MAP * gs.stride()) as i32);
    let des_base = s.splat_i32((DESOLV_MAP * gs.stride()) as i32);
    let stride_f = s.splat(stride);
    let pen_slope = s.splat(OUT_OF_BOX_PENALTY * dims.spacing);

    let data = gs.data.as_slice();
    let mut acc = s.zero();
    let len = conf.len_padded();
    let mut i = 0;
    while i < len {
        let px = s.load(&conf.x[i..]);
        let py = s.load(&conf.y[i..]);
        let pz = s.load(&conf.z[i..]);
        // Continuous grid coordinates.
        let gx = s.mul(s.sub(px, ox), inv_sp);
        let gy = s.mul(s.sub(py, oy), inv_sp);
        let gz = s.mul(s.sub(pz, oz), inv_sp);

        // Out-of-box distance (in grid units; converted by pen_slope).
        let out_x = s.add(s.max(s.neg(gx), zero), s.max(s.sub(gx, bx), zero));
        let out_y = s.add(s.max(s.neg(gy), zero), s.max(s.sub(gy, by), zero));
        let out_z = s.add(s.max(s.neg(gz), zero), s.max(s.sub(gz, bz), zero));
        let out2 = s.mul_add(out_z, out_z, s.mul_add(out_y, out_y, s.mul(out_x, out_x)));
        let penalty = s.mul(pen_slope, s.sqrt(out2));

        // Clamp into the box, split integer cell + fraction.
        let cx = s.min(s.max(gx, zero), hx);
        let cy = s.min(s.max(gy, zero), hy);
        let cz = s.min(s.max(gz, zero), hz);
        let ixi = s.trunc_i32(cx);
        let iyi = s.trunc_i32(cy);
        let izi = s.trunc_i32(cz);
        let ixf = s.i32_to_f32(ixi);
        let iyf = s.i32_to_f32(iyi);
        let izf = s.i32_to_f32(izi);
        let fx = s.sub(cx, ixf);
        let fy = s.sub(cy, iyf);
        let fz = s.sub(cz, izf);

        // cell = (iz*ny + iy)*nx + ix — exact in f32 (< 2^24).
        let cell_f = s.mul_add(s.mul_add(izf, nyf, iyf), nxf, ixf);

        // Type map base = ty * stride, again exact in f32.
        let ty_f = s.i32_to_f32(s.load_i32(&st.ty[i..]));
        let t_idx = s.round_i32(s.mul_add(ty_f, stride_f, cell_f));
        let cell_i = s.round_i32(cell_f);
        let e_idx = s.i32_add(elec_base, cell_i);
        let d_idx = s.i32_add(des_base, cell_i);

        // SAFETY: ix ≤ nx-2 etc. by the clamp above, so every corner index
        // (base + cell + {0,1,sy,sz} combinations) stays inside its map;
        // type indices are validated against built maps at prep time.
        let e_t = unsafe { trilerp(s, data, t_idx, sy, sz, fx, fy, fz) };
        let e_e = unsafe { trilerp(s, data, e_idx, sy, sz, fx, fy, fz) };
        let e_d = unsafe { trilerp(s, data, d_idx, sy, sz, fx, fy, fz) };

        let q = s.load(&st.charge[i..]);
        let qa = s.abs(q);
        let e = s.mul_add(q, e_e, s.mul_add(qa, e_d, s.add(e_t, penalty)));
        // Padding lanes zero out here.
        acc = s.mul_add(s.load(&st.wt[i..]), e, acc);
        i += S::LANES;
    }
    s.reduce_add(acc)
}

/// Gather the 8 trilinear corners starting at `idx000` and interpolate.
///
/// # Safety
/// All eight corner indices must be in range for `data` (guaranteed by the
/// caller's clamping).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // eight corner indices of the lattice cell
unsafe fn trilerp<S: Simd>(
    s: S,
    data: &[f32],
    idx000: S::VI,
    sy: i32,
    sz: i32,
    fx: S::V,
    fy: S::V,
    fz: S::V,
) -> S::V {
    let i100 = s.i32_add(idx000, s.splat_i32(1));
    let i010 = s.i32_add(idx000, s.splat_i32(sy));
    let i110 = s.i32_add(i010, s.splat_i32(1));
    let i001 = s.i32_add(idx000, s.splat_i32(sz));
    let i101 = s.i32_add(i001, s.splat_i32(1));
    let i011 = s.i32_add(i001, s.splat_i32(sy));
    let i111 = s.i32_add(i011, s.splat_i32(1));

    let c000 = s.gather_unchecked(data, idx000);
    let c100 = s.gather_unchecked(data, i100);
    let c010 = s.gather_unchecked(data, i010);
    let c110 = s.gather_unchecked(data, i110);
    let c001 = s.gather_unchecked(data, i001);
    let c101 = s.gather_unchecked(data, i101);
    let c011 = s.gather_unchecked(data, i011);
    let c111 = s.gather_unchecked(data, i111);

    let c00 = s.mul_add(fx, s.sub(c100, c000), c000);
    let c10 = s.mul_add(fx, s.sub(c110, c010), c010);
    let c01 = s.mul_add(fx, s.sub(c101, c001), c001);
    let c11 = s.mul_add(fx, s.sub(c111, c011), c011);
    let c0 = s.mul_add(fy, s.sub(c10, c00), c00);
    let c1 = s.mul_add(fy, s.sub(c11, c01), c01);
    s.mul_add(fz, s.sub(c1, c0), c0)
}

/// Dispatch the inter kernel at a runtime-selected level.
pub fn inter_energy_simd(
    level: SimdLevel,
    gs: &GridSet,
    conf: &ConformSoA,
    st: &AtomStatics,
) -> f32 {
    dispatch!(level, |s| inter_energy_kernel(s, gs, conf, st))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_ff::types::AtomType;
    use mudock_grids::{GridBuilder, GridDims};
    use mudock_mol::Vec3;
    use mudock_molio::{synthetic_ligand, synthetic_receptor, LigandSpec};

    fn setup() -> (GridSet, ConformSoA, AtomStatics) {
        let rec = synthetic_receptor(5, 120, 8.0);
        let lig = synthetic_ligand(
            6,
            LigandSpec {
                heavy_atoms: 18,
                torsions: 4,
            },
        );
        let types: Vec<AtomType> = {
            let mut t: Vec<AtomType> = lig.atoms.iter().map(|a| a.ty).collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        let dims = GridDims::centered(Vec3::ZERO, 10.0, 0.6);
        let gs = GridBuilder::new(&rec, dims)
            .with_types(&types)
            .build_simd(SimdLevel::detect());
        let conf = ConformSoA::from_molecule(&lig);
        let st = AtomStatics::from_molecule(&lig);
        (gs, conf, st)
    }

    #[test]
    fn kernel_matches_reference_all_levels() {
        let (gs, conf, st) = setup();
        let want = inter_energy_reference(&gs, &conf, &st);
        for level in SimdLevel::available() {
            let got = inter_energy_simd(level, &gs, &conf, &st);
            assert!(
                (got - want).abs() < 2e-3 * want.abs().max(1.0),
                "{level}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn out_of_box_atoms_pay_penalty() {
        let (gs, mut conf, st) = setup();
        let base = inter_energy_reference(&gs, &conf, &st);
        // Push one atom 3 Å past the box edge.
        let edge = gs.dims.max_corner();
        conf.set_pos(0, edge + Vec3::new(3.0, 0.0, 0.0));
        let shifted = inter_energy_reference(&gs, &conf, &st);
        assert!(
            shifted > base + 0.9 * 3.0 * OUT_OF_BOX_PENALTY,
            "penalty missing: {base} -> {shifted}"
        );
        // SIMD path sees the same penalty.
        for level in SimdLevel::available() {
            let got = inter_energy_simd(level, &gs, &conf, &st);
            assert!(
                (got - shifted).abs() < 2e-2 * shifted.abs().max(1.0),
                "{level}: {got} vs {shifted}"
            );
        }
    }

    #[test]
    fn trace_records_three_lookups_per_atom() {
        let (gs, conf, st) = setup();
        let mut trace = Vec::new();
        let _ = inter_energy_traced(&gs, &conf, &st, &mut trace);
        assert_eq!(trace.len(), conf.n * 3);
        let stride = gs.stride() as u32;
        for a in &trace {
            assert!(a.cell < stride, "cell index inside one map");
        }
        // The three lookups per atom hit the same cell in different maps.
        for chunk in trace.chunks(3) {
            assert_eq!(chunk[0].cell, chunk[1].cell);
            assert_eq!(chunk[1].cell, chunk[2].cell);
            assert_eq!(chunk[1].map, ELEC_MAP as u16);
            assert_eq!(chunk[2].map, DESOLV_MAP as u16);
        }
    }

    #[test]
    fn charges_scale_elec_contribution() {
        let (gs, conf, mut st) = setup();
        let e1 = inter_energy_reference(&gs, &conf, &st);
        for q in st.charge.iter_mut() {
            *q = 0.0;
        }
        let e0 = inter_energy_reference(&gs, &conf, &st);
        // Chargeless ligand keeps only the type-map part.
        assert!((e0 - e1).abs() > 1e-6 || e1 == e0, "sanity");
        let mut sum_types = 0.0;
        for i in 0..conf.n {
            sum_types += gs.sample(st.ty[i] as usize, conf.pos(i));
        }
        assert!((e0 - sum_types).abs() < 1e-2 * sum_types.abs().max(1.0));
    }
}
