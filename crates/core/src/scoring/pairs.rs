//! Intramolecular pair list in gather-friendly SoA form.
//!
//! Built once per ligand: for every scored pair (graph distance > 3) the
//! force-field coefficients are premultiplied and flattened so the intra
//! kernel is pure arithmetic + coordinate gathers. Padding entries carry
//! all-zero coefficients, making their contribution exactly zero — kernels
//! never need tail handling.

use mudock_ff::params::PairTable;
use mudock_ff::terms::solvation_param;
use mudock_ff::vterms::premult;
use mudock_mol::{padded_len, Molecule, Topology};

/// Per-pair coefficient arrays (all padded to the widest vector).
#[derive(Clone, Debug, Default)]
pub struct PairsSoA {
    /// Real pair count (arrays are padded beyond it).
    pub n: usize,
    /// First atom index of each pair.
    pub i: Vec<i32>,
    /// Second atom index of each pair.
    pub j: Vec<i32>,
    /// Weighted 12-power coefficient.
    pub c12: Vec<f32>,
    /// Weighted 6-power coefficient (0 for H-bond pairs).
    pub c6: Vec<f32>,
    /// Weighted 10-power coefficient (0 for non-H-bond pairs).
    pub c10: Vec<f32>,
    /// Pair equilibrium distance (for smoothing).
    pub rij: Vec<f32>,
    /// Premultiplied electrostatic coefficient `W_e·332·q_i·q_j`.
    pub qq: Vec<f32>,
    /// Premultiplied desolvation coefficient `W_d·(S_i V_j + S_j V_i)`.
    pub sv: Vec<f32>,
}

impl PairsSoA {
    /// Build from a molecule and its derived topology.
    pub fn build(mol: &Molecule, topo: &Topology, table: &PairTable) -> PairsSoA {
        let n = topo.pairs.len();
        let len = padded_len(n.max(1));
        let mut p = PairsSoA {
            n,
            i: vec![0; len],
            j: vec![0; len],
            c12: vec![0.0; len],
            c6: vec![0.0; len],
            c10: vec![0.0; len],
            rij: vec![1.0; len],
            qq: vec![0.0; len],
            sv: vec![0.0; len],
        };
        for (k, &(ai, aj)) in topo.pairs.iter().enumerate() {
            let a = &mol.atoms[ai as usize];
            let b = &mol.atoms[aj as usize];
            let t = PairTable::index(a.ty, b.ty);
            p.i[k] = ai as i32;
            p.j[k] = aj as i32;
            p.c12[k] = table.c12[t];
            p.c6[k] = table.c6[t];
            p.c10[k] = table.c10[t];
            p.rij[k] = table.rij[t];
            p.qq[k] = premult::qq(a.charge, b.charge);
            let sa = solvation_param(a.ty, a.charge);
            let sb = solvation_param(b.ty, b.charge);
            let va = mudock_ff::params::type_params(a.ty).vol;
            let vb = mudock_ff::params::type_params(b.ty).vol;
            p.sv[k] = premult::sv(sa, va, sb, vb);
        }
        p
    }

    /// Padded array length.
    #[inline]
    pub fn len_padded(&self) -> usize {
        self.i.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mudock_ff::types::AtomType;
    use mudock_mol::{Atom, Bond, Vec3};

    fn chain(n: usize) -> (Molecule, Topology) {
        let mut m = Molecule::new("chain");
        for k in 0..n {
            let ty = if k % 3 == 0 {
                AtomType::OA
            } else {
                AtomType::C
            };
            m.atoms
                .push(Atom::new(Vec3::new(k as f32 * 1.5, 0.0, 0.0), ty, 0.1));
        }
        for k in 0..n - 1 {
            m.bonds.push(Bond::new(k as u32, k as u32 + 1, false));
        }
        let t = Topology::build(&m);
        (m, t)
    }

    #[test]
    fn pair_count_matches_topology() {
        let (m, t) = chain(8);
        let p = PairsSoA::build(&m, &t, &PairTable::new());
        assert_eq!(p.n, t.pairs.len());
        assert!(p.len_padded() >= p.n);
        assert_eq!(p.len_padded() % mudock_mol::PAD, 0);
    }

    #[test]
    fn padding_has_zero_coefficients() {
        let (m, t) = chain(8);
        let p = PairsSoA::build(&m, &t, &PairTable::new());
        for k in p.n..p.len_padded() {
            assert_eq!(p.c12[k], 0.0);
            assert_eq!(p.c6[k], 0.0);
            assert_eq!(p.c10[k], 0.0);
            assert_eq!(p.qq[k], 0.0);
            assert_eq!(p.sv[k], 0.0);
        }
    }

    #[test]
    fn coefficients_match_force_field() {
        let (m, t) = chain(8);
        let p = PairsSoA::build(&m, &t, &PairTable::new());
        let table = PairTable::new();
        for k in 0..p.n {
            let (ai, aj) = t.pairs[k];
            let a = &m.atoms[ai as usize];
            let b = &m.atoms[aj as usize];
            let idx = PairTable::index(a.ty, b.ty);
            assert_eq!(p.c12[k], table.c12[idx]);
            assert_eq!(p.qq[k], premult::qq(a.charge, b.charge));
        }
    }
}
