//! Pose scoring — the paper's Algorithm 2, split into the grid-lookup
//! inter-energy (memory-bound) and pairwise intra-energy (compute-bound)
//! kernels, each with reference, auto-vectorizable and explicit-SIMD
//! implementations.

pub mod inter;
pub mod intra;
pub mod pairs;

pub use inter::{
    inter_energy_reference, inter_energy_simd, inter_energy_traced, GridAccess, OUT_OF_BOX_PENALTY,
};
pub use intra::{intra_energy_reference, intra_energy_simd};
pub use pairs::PairsSoA;
