//! # mudock-core — the muDock docking engine
//!
//! Rust reproduction of the muDock mini-app at the heart of the paper: a
//! genetic-algorithm pose search (Algorithm 1) over an AutoDock 4-style
//! scoring function (Algorithm 2), with the receptor interaction
//! memoized into AutoGrid-style maps (`mudock-grids`).
//!
//! Every kernel exists in three semantically identical forms, which is the
//! paper's entire experimental axis:
//!
//! | [`Backend`]               | paper analogue                                   |
//! |---------------------------|--------------------------------------------------|
//! | [`Backend::Reference`]    | scalar + `libm` (no vector math → no vectorization, the GCC-on-ARM case) |
//! | [`Backend::AutoVec`]      | auto-vectorizable loops with inline polynomial math (`#pragma omp simd` + `-fveclib`) |
//! | [`Backend::Explicit`]     | explicit SIMD via `mudock-simd` (Google Highway) |
//!
//! Runs are described by the [`campaign`] API: a [`CampaignSpec`] built
//! through [`Campaign::builder`] composes a [`BackendPolicy`] (detect,
//! fix, or pin a SIMD level per job), a [`StopPolicy`] (evaluation
//! budgets, deadlines, ranking-stability early termination), and a
//! [`ChunkPolicy`] (fixed or adaptive batch sizing), and lowers to the
//! kernel-level [`DockParams`]. Every entry point — one-shot docking,
//! batch [`screen_campaign`], `mudock-serve` jobs, and the CLI —
//! consumes that one shape.
//!
//! ```
//! use mudock_core::{Backend, DockParams, DockingEngine, GaParams, LigandPrep};
//! use mudock_grids::{GridBuilder, GridDims};
//! use mudock_molio::complex_1a30_like;
//! use mudock_mol::Vec3;
//! use mudock_simd::SimdLevel;
//!
//! let (receptor, ligand) = complex_1a30_like();
//! let mut types: Vec<mudock_ff::AtomType> = ligand.atoms.iter().map(|a| a.ty).collect();
//! types.sort_unstable();
//! types.dedup();
//! let dims = GridDims::centered(Vec3::ZERO, 10.0, 0.75);
//! let maps = GridBuilder::new(&receptor, dims)
//!     .with_types(&types)
//!     .build_simd(SimdLevel::detect());
//!
//! let engine = DockingEngine::new(&maps).unwrap();
//! let prep = LigandPrep::new(ligand).unwrap();
//! let params = DockParams {
//!     ga: GaParams { population: 10, generations: 5, ..Default::default() },
//!     ..Default::default()
//! };
//! let report = engine.dock(&prep, &params).unwrap();
//! assert!(report.best_score.is_finite());
//! assert_eq!(report.evaluations, 50);
//! ```

pub mod campaign;
pub mod engine;
pub mod ga;
pub mod genotype;
pub mod local_search;
pub mod scoring;
pub mod screen;
pub mod stats;
pub mod topk;
pub mod transform;

pub use campaign::{
    BackendPolicy, Campaign, CampaignBuilder, CampaignError, CampaignSpec, ChunkPolicy, ChunkSizer,
    ShardPolicy, StopCheck, StopPolicy, MAX_CHUNK, MAX_SHARD_WEIGHT,
};
pub use engine::{Backend, DockError, DockParams, DockReport, DockingEngine, LigandPrep};
pub use ga::{Ga, GaParams};
pub use genotype::Genotype;
pub use local_search::{solis_wets, LocalSearchResult, SolisWetsParams};
pub use screen::{dock_ligand, ligand_seed, screen, screen_campaign, ScreenResult, ScreenSummary};
pub use stats::KernelStats;
pub use topk::{merge_ranked_partials, TopK};
