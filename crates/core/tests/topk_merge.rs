//! Partition invariance of the top-k merge — the property the cluster
//! coordinator's gather path stands on.
//!
//! [`merge_ranked_partials`] promises: split a score stream into any
//! contiguous windows, run an independent [`TopK`] per window, hand the
//! per-window rankings (best-first, window order) back, and the merged
//! ranking is **bit-identical** — score bits *and* tie order — to one
//! [`TopK`] over the unpartitioned stream. Scores are drawn from a
//! small quantized set so exact-score ties (the hard part: earlier
//! stream position must win) occur constantly, and a sprinkle of
//! non-finite scores checks that rejection happens identically on both
//! paths.

use mudock_core::{merge_ranked_partials, TopK};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Scores with deliberate collisions: a handful of quantized finite
/// values plus occasional NaN/infinities.
fn gen_scores(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len)
        .map(|_| match rng.random_range(0u32..20) {
            0 => f32::NAN,
            1 => f32::INFINITY,
            2 => f32::NEG_INFINITY,
            // ~8 distinct values over up to 64 entries → dense ties.
            _ => (rng.random_range(0i32..8) - 4) as f32 * 1.25,
        })
        .collect()
}

/// Random contiguous partition of `0..len` into non-empty windows
/// (empty windows are legal for the merge; the partitioner may still
/// produce one via duplicate cuts — also worth covering).
fn gen_cuts(rng: &mut StdRng, len: usize) -> Vec<usize> {
    let n = rng.random_range(0usize..6);
    let mut cuts: Vec<usize> = (0..n).map(|_| rng.random_range(0usize..=len)).collect();
    cuts.sort_unstable();
    cuts
}

proptest! {
    #[test]
    fn merging_any_partition_is_bit_identical_to_the_whole(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.random_range(0usize..64);
        let scores = gen_scores(&mut rng, len);
        let k = rng.random_range(0usize..10);

        // The reference: one accumulator over the whole stream, items
        // tagged with their global stream position.
        let mut whole = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            whole.push(s, i);
        }

        // The cluster path: an independent accumulator per contiguous
        // window, partial rankings gathered in window order.
        let cuts = gen_cuts(&mut rng, len);
        let mut parts: Vec<Vec<(f32, usize)>> = Vec::new();
        let mut start = 0;
        for cut in cuts.into_iter().chain(std::iter::once(len)) {
            let mut part = TopK::new(k);
            for (i, &s) in scores[start..cut].iter().enumerate() {
                part.push(s, start + i);
            }
            parts.push(part.into_sorted());
            start = cut;
        }

        let merged = merge_ranked_partials(k, parts);
        let as_bits = |v: Vec<(f32, usize)>| -> Vec<(u32, usize)> {
            v.into_iter().map(|(s, i)| (s.to_bits(), i)).collect()
        };
        prop_assert_eq!(as_bits(whole.into_sorted()), as_bits(merged));
    }
}
