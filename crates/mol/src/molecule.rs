//! Molecule representation and derived topology: bonds, rotatable-bond
//! fragments (the paper's Algorithm 1 `rotate_fragments`), scoring
//! exclusions and the intramolecular pair list (Algorithm 2's intra loop).

use mudock_ff::types::AtomType;

use crate::vec3::Vec3;

/// One atom of a ligand or receptor.
#[derive(Clone, Debug, PartialEq)]
pub struct Atom {
    /// Position (Å).
    pub pos: Vec3,
    /// AutoDock atom type.
    pub ty: AtomType,
    /// Partial charge (elementary charge units, Gasteiger-style).
    pub charge: f32,
}

impl Atom {
    pub fn new(pos: Vec3, ty: AtomType, charge: f32) -> Atom {
        Atom { pos, ty, charge }
    }
}

/// A covalent bond between two atoms (indices into [`Molecule::atoms`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bond {
    pub i: u32,
    pub j: u32,
    /// Marked torsionally active (PDBQT `BRANCH` equivalent).
    pub rotatable: bool,
}

impl Bond {
    pub fn new(i: u32, j: u32, rotatable: bool) -> Bond {
        Bond { i, j, rotatable }
    }
}

/// A small molecule (ligand) or rigid macromolecule (receptor).
#[derive(Clone, Debug, Default)]
pub struct Molecule {
    pub name: String,
    pub atoms: Vec<Atom>,
    pub bonds: Vec<Bond>,
}

/// Errors from [`Molecule::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MoleculeError {
    /// A bond references an atom index out of range.
    BondIndexOutOfRange { bond: usize },
    /// A bond connects an atom to itself.
    SelfBond { bond: usize },
    /// A charge or coordinate is NaN/infinite.
    NonFiniteValue { atom: usize },
    /// Molecule has no atoms.
    Empty,
}

impl std::fmt::Display for MoleculeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoleculeError::BondIndexOutOfRange { bond } => {
                write!(f, "bond {bond} references an out-of-range atom")
            }
            MoleculeError::SelfBond { bond } => write!(f, "bond {bond} is a self-bond"),
            MoleculeError::NonFiniteValue { atom } => {
                write!(f, "atom {atom} has a non-finite coordinate or charge")
            }
            MoleculeError::Empty => write!(f, "molecule has no atoms"),
        }
    }
}

impl std::error::Error for MoleculeError {}

impl Molecule {
    pub fn new(name: impl Into<String>) -> Molecule {
        Molecule {
            name: name.into(),
            atoms: Vec::new(),
            bonds: Vec::new(),
        }
    }

    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    pub fn num_rotatable_bonds(&self) -> usize {
        self.bonds.iter().filter(|b| b.rotatable).count()
    }

    /// Geometric center of all atoms.
    pub fn centroid(&self) -> Vec3 {
        if self.atoms.is_empty() {
            return Vec3::ZERO;
        }
        let mut c = Vec3::ZERO;
        for a in &self.atoms {
            c += a.pos;
        }
        c / self.atoms.len() as f32
    }

    /// Radius of the bounding sphere around the centroid.
    pub fn radius(&self) -> f32 {
        let c = self.centroid();
        self.atoms
            .iter()
            .map(|a| a.pos.distance(c))
            .fold(0.0f32, f32::max)
    }

    /// Translate every atom so the centroid lands at the origin (docking
    /// poses are expressed relative to the ligand origin, Algorithm 1).
    pub fn center_at_origin(&mut self) {
        let c = self.centroid();
        for a in &mut self.atoms {
            a.pos -= c;
        }
    }

    /// Net formal charge.
    pub fn total_charge(&self) -> f32 {
        self.atoms.iter().map(|a| a.charge).sum()
    }

    /// Structural sanity checks; cheap enough to run on every input.
    pub fn validate(&self) -> Result<(), MoleculeError> {
        if self.atoms.is_empty() {
            return Err(MoleculeError::Empty);
        }
        let n = self.atoms.len() as u32;
        for (bi, b) in self.bonds.iter().enumerate() {
            if b.i >= n || b.j >= n {
                return Err(MoleculeError::BondIndexOutOfRange { bond: bi });
            }
            if b.i == b.j {
                return Err(MoleculeError::SelfBond { bond: bi });
            }
        }
        for (ai, a) in self.atoms.iter().enumerate() {
            let ok = a.pos.x.is_finite()
                && a.pos.y.is_finite()
                && a.pos.z.is_finite()
                && a.charge.is_finite();
            if !ok {
                return Err(MoleculeError::NonFiniteValue { atom: ai });
            }
        }
        Ok(())
    }
}

/// A torsion: rotation of `moving` atoms about the `a`→`b` bond axis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Torsion {
    /// Fixed axis endpoint (stays put).
    pub a: u32,
    /// Moving-side axis endpoint (stays put; defines the axis with `a`).
    pub b: u32,
    /// Atom indices displaced when this torsion turns (excludes `a`, `b`).
    pub moving: Vec<u32>,
}

/// Topology derived once per molecule: adjacency, torsion fragments,
/// and the intramolecular non-bonded pair list.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// Neighbor lists per atom.
    pub adjacency: Vec<Vec<u32>>,
    /// Torsions for every *effective* rotatable bond (bonds flagged
    /// rotatable whose removal actually splits the graph and moves ≥ 1
    /// atom).
    pub torsions: Vec<Torsion>,
    /// All unordered atom pairs further than 3 bonds apart (AutoDock
    /// excludes 1-2, 1-3 and 1-4 interactions from intra-energy).
    pub pairs: Vec<(u32, u32)>,
}

/// Maximum bond-path separation that is *excluded* from intra-energy.
pub const EXCLUSION_DEPTH: u32 = 3;

impl Topology {
    /// Build the derived topology for a validated molecule.
    pub fn build(m: &Molecule) -> Topology {
        let n = m.atoms.len();
        let mut adjacency = vec![Vec::new(); n];
        for b in &m.bonds {
            adjacency[b.i as usize].push(b.j);
            adjacency[b.j as usize].push(b.i);
        }

        let torsions = m
            .bonds
            .iter()
            .filter(|b| b.rotatable)
            .filter_map(|b| Self::torsion_for_bond(&adjacency, n, b.i, b.j))
            .collect();

        let pairs = Self::nonbonded_pairs(&adjacency, n);

        Topology {
            adjacency,
            torsions,
            pairs,
        }
    }

    /// Moving fragment for a rotatable bond `(i, j)`: the atoms reachable
    /// from `j` without crossing the bond. Returns `None` when the bond is
    /// part of a ring (removal does not disconnect) or nothing would move.
    fn torsion_for_bond(adjacency: &[Vec<u32>], n: usize, i: u32, j: u32) -> Option<Torsion> {
        let mut seen = vec![false; n];
        seen[j as usize] = true;
        let mut stack = vec![j];
        let mut moving = Vec::new();
        while let Some(u) = stack.pop() {
            for &v in &adjacency[u as usize] {
                if u == j && v == i {
                    continue; // do not cross the rotatable bond itself
                }
                if v == i {
                    // Reached the fixed endpoint without crossing the bond:
                    // the bond closes a ring, rotation is invalid.
                    return None;
                }
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    moving.push(v);
                    stack.push(v);
                }
            }
        }
        if moving.is_empty() {
            None
        } else {
            moving.sort_unstable();
            Some(Torsion { a: i, b: j, moving })
        }
    }

    /// All unordered pairs with graph distance > [`EXCLUSION_DEPTH`].
    #[allow(clippy::needless_range_loop)] // pairwise index loops over `dist`
    fn nonbonded_pairs(adjacency: &[Vec<u32>], n: usize) -> Vec<(u32, u32)> {
        // BFS from each atom to depth 3 marks the excluded neighborhood.
        let mut pairs = Vec::new();
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for i in 0..n {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[i] = 0;
            queue.clear();
            queue.push_back(i as u32);
            while let Some(u) = queue.pop_front() {
                let du = dist[u as usize];
                if du == EXCLUSION_DEPTH {
                    continue;
                }
                for &v in &adjacency[u as usize] {
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
            for j in (i + 1)..n {
                if dist[j] == u32::MAX {
                    pairs.push((i as u32, j as u32));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// n-butane-like chain: C0-C1-C2-C3 with the C1-C2 bond rotatable.
    fn butane() -> Molecule {
        let mut m = Molecule::new("butane");
        for i in 0..4 {
            m.atoms.push(Atom::new(
                Vec3::new(i as f32 * 1.5, 0.0, 0.0),
                AtomType::C,
                0.0,
            ));
        }
        m.bonds.push(Bond::new(0, 1, false));
        m.bonds.push(Bond::new(1, 2, true));
        m.bonds.push(Bond::new(2, 3, false));
        m
    }

    /// Cyclobutane-like ring: 4 atoms in a cycle, one bond flagged
    /// rotatable (which must be rejected).
    fn ring() -> Molecule {
        let mut m = Molecule::new("ring");
        for i in 0..4 {
            m.atoms.push(Atom::new(
                Vec3::new((i % 2) as f32, (i / 2) as f32, 0.0),
                AtomType::C,
                0.0,
            ));
        }
        m.bonds.push(Bond::new(0, 1, false));
        m.bonds.push(Bond::new(1, 3, true)); // in-ring, not really rotatable
        m.bonds.push(Bond::new(3, 2, false));
        m.bonds.push(Bond::new(2, 0, false));
        m
    }

    #[test]
    fn validate_accepts_good_molecule() {
        assert!(butane().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_bond() {
        let mut m = butane();
        m.bonds.push(Bond::new(0, 99, false));
        assert_eq!(
            m.validate(),
            Err(MoleculeError::BondIndexOutOfRange { bond: 3 })
        );
        let mut m2 = butane();
        m2.bonds.push(Bond::new(2, 2, false));
        assert_eq!(m2.validate(), Err(MoleculeError::SelfBond { bond: 3 }));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut m = butane();
        m.atoms[1].charge = f32::NAN;
        assert_eq!(m.validate(), Err(MoleculeError::NonFiniteValue { atom: 1 }));
    }

    #[test]
    fn butane_torsion_moves_tail() {
        let t = Topology::build(&butane());
        assert_eq!(t.torsions.len(), 1);
        let tor = &t.torsions[0];
        assert_eq!((tor.a, tor.b), (1, 2));
        assert_eq!(tor.moving, vec![3]);
    }

    #[test]
    fn ring_bond_is_not_a_torsion() {
        let t = Topology::build(&ring());
        assert!(t.torsions.is_empty(), "ring bonds cannot rotate");
    }

    #[test]
    fn butane_pair_list_excludes_1_4() {
        // Chain of 4: all pairs are within 3 bonds, so no scored pairs.
        let t = Topology::build(&butane());
        assert!(t.pairs.is_empty(), "{:?}", t.pairs);
    }

    #[test]
    fn longer_chain_has_1_5_pairs() {
        let mut m = Molecule::new("pentane");
        for i in 0..6 {
            m.atoms.push(Atom::new(
                Vec3::new(i as f32 * 1.5, 0.0, 0.0),
                AtomType::C,
                0.0,
            ));
        }
        for i in 0..5 {
            m.bonds.push(Bond::new(i, i + 1, false));
        }
        let t = Topology::build(&m);
        // 1-5 and 1-6 pairs survive: (0,4), (0,5), (1,5).
        assert_eq!(t.pairs, vec![(0, 4), (0, 5), (1, 5)]);
    }

    #[test]
    fn centroid_and_centering() {
        let mut m = butane();
        let c = m.centroid();
        assert!((c.x - 2.25).abs() < 1e-6);
        m.center_at_origin();
        assert!(m.centroid().norm() < 1e-5);
    }

    #[test]
    fn radius_covers_all_atoms() {
        let m = butane();
        let c = m.centroid();
        let r = m.radius();
        for a in &m.atoms {
            assert!(a.pos.distance(c) <= r + 1e-5);
        }
    }

    #[test]
    fn disconnected_pair_in_two_fragments() {
        // Two disjoint atoms: one pair, no exclusions.
        let mut m = Molecule::new("dimer");
        m.atoms.push(Atom::new(Vec3::ZERO, AtomType::C, 0.0));
        m.atoms
            .push(Atom::new(Vec3::new(5.0, 0.0, 0.0), AtomType::OA, -0.3));
        let t = Topology::build(&m);
        assert_eq!(t.pairs, vec![(0, 1)]);
    }
}
