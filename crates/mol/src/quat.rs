//! Unit quaternions for rigid-body pose rotation (Algorithm 1, line 5)
//! and torsion rotations about bond axes (line 8).

use crate::vec3::Vec3;

/// A quaternion `w + xi + yj + zk`. Pose rotations always use *unit*
/// quaternions; [`Quat::normalized`] restores the invariant after genetic
/// operators perturb components.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quat {
    pub w: f32,
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub fn new(w: f32, x: f32, y: f32, z: f32) -> Quat {
        Quat { w, x, y, z }
    }

    /// Rotation of `angle` radians about `axis` (normalized internally).
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Quat {
        let a = axis.normalized();
        let (s, c) = (angle * 0.5).sin_cos();
        Quat {
            w: c,
            x: a.x * s,
            y: a.y * s,
            z: a.z * s,
        }
    }

    /// Uniformly distributed random rotation from three uniforms in
    /// `[0, 1)` (Shoemake 1992). Deterministic given the inputs, so callers
    /// own the RNG.
    pub fn from_uniforms(u1: f32, u2: f32, u3: f32) -> Quat {
        use std::f32::consts::TAU;
        let s1 = (1.0 - u1).sqrt();
        let s2 = u1.sqrt();
        Quat {
            w: s2 * (TAU * u3).cos(),
            x: s1 * (TAU * u2).sin(),
            y: s1 * (TAU * u2).cos(),
            z: s2 * (TAU * u3).sin(),
        }
    }

    #[inline]
    pub fn norm_sq(self) -> f32 {
        self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z
    }

    #[inline]
    pub fn norm(self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Rescale to unit length; degenerate zero quaternions become identity.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n > 1e-12 {
            Quat {
                w: self.w / n,
                x: self.x / n,
                y: self.y / n,
                z: self.z / n,
            }
        } else {
            Quat::IDENTITY
        }
    }

    /// Conjugate (inverse for unit quaternions).
    #[inline]
    pub fn conj(self) -> Quat {
        Quat {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Hamilton product `self * o` (apply `o` first, then `self`).
    #[allow(clippy::should_implement_trait)] // explicit call sites read better in kernels
    pub fn mul(self, o: Quat) -> Quat {
        Quat {
            w: self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            x: self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            y: self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            z: self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        }
    }

    /// Rotate a vector. Uses the expanded rotation-matrix form (15 mul +
    /// 15 add), the same arithmetic the SIMD transform kernel performs.
    #[inline]
    pub fn rotate(self, v: Vec3) -> Vec3 {
        let Quat { w, x, y, z } = self;
        let xx = x * x;
        let yy = y * y;
        let zz = z * z;
        let xy = x * y;
        let xz = x * z;
        let yz = y * z;
        let wx = w * x;
        let wy = w * y;
        let wz = w * z;
        Vec3 {
            x: v.x * (1.0 - 2.0 * (yy + zz)) + v.y * 2.0 * (xy - wz) + v.z * 2.0 * (xz + wy),
            y: v.x * 2.0 * (xy + wz) + v.y * (1.0 - 2.0 * (xx + zz)) + v.z * 2.0 * (yz - wx),
            z: v.x * 2.0 * (xz - wy) + v.y * 2.0 * (yz + wx) + v.z * (1.0 - 2.0 * (xx + yy)),
        }
    }

    /// The 9 coefficients of the equivalent rotation matrix, row-major.
    /// The SIMD transform kernel broadcasts these across lanes.
    pub fn to_matrix(self) -> [f32; 9] {
        let Quat { w, x, y, z } = self;
        let xx = x * x;
        let yy = y * y;
        let zz = z * z;
        let xy = x * y;
        let xz = x * z;
        let yz = y * z;
        let wx = w * x;
        let wy = w * y;
        let wz = w * z;
        [
            1.0 - 2.0 * (yy + zz),
            2.0 * (xy - wz),
            2.0 * (xz + wy),
            2.0 * (xy + wz),
            1.0 - 2.0 * (xx + zz),
            2.0 * (yz - wx),
            2.0 * (xz - wy),
            2.0 * (yz + wx),
            1.0 - 2.0 * (xx + yy),
        ]
    }
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    fn close(a: Vec3, b: Vec3, tol: f32) -> bool {
        (a - b).norm() < tol
    }

    #[test]
    fn identity_rotation() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert!(close(Quat::IDENTITY.rotate(v), v, 1e-6));
    }

    #[test]
    fn quarter_turn_about_z() {
        let q = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), FRAC_PI_2);
        let r = q.rotate(Vec3::new(1.0, 0.0, 0.0));
        assert!(close(r, Vec3::new(0.0, 1.0, 0.0), 1e-5), "{r}");
    }

    #[test]
    fn rotation_preserves_norm() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 1.234);
        for i in 0..50 {
            let v = Vec3::new(
                i as f32 * 0.3,
                (i * i) as f32 * 0.01 - 1.0,
                2.0 - i as f32 * 0.1,
            );
            let r = q.rotate(v);
            assert!((r.norm() - v.norm()).abs() < 1e-4 * v.norm().max(1.0));
        }
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let q1 = Quat::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), 0.7);
        let q2 = Quat::from_axis_angle(Vec3::new(0.0, 1.0, 0.0), -1.1);
        let v = Vec3::new(1.5, -0.2, 0.8);
        let seq = q2.rotate(q1.rotate(v));
        let comp = q2.mul(q1).rotate(v);
        assert!(close(seq, comp, 1e-5), "{seq} vs {comp}");
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.0), 0.9);
        let v = Vec3::new(0.3, 0.4, 0.5);
        let back = q.conj().rotate(q.rotate(v));
        assert!(close(back, v, 1e-5));
    }

    #[test]
    fn full_turn_is_identity() {
        let q = Quat::from_axis_angle(Vec3::new(0.3, -0.4, 0.87), 2.0 * PI);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(close(q.rotate(v), v, 1e-4));
    }

    #[test]
    fn shoemake_is_unit() {
        for i in 0..20 {
            let u1 = (i as f32 * 0.05 + 0.01).min(0.99);
            let q = Quat::from_uniforms(u1, 0.37, 0.81);
            assert!((q.norm() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn matrix_matches_rotate() {
        let q = Quat::from_axis_angle(Vec3::new(2.0, -1.0, 0.4), 0.63);
        let m = q.to_matrix();
        let v = Vec3::new(0.9, -1.2, 2.1);
        let mv = Vec3::new(
            m[0] * v.x + m[1] * v.y + m[2] * v.z,
            m[3] * v.x + m[4] * v.y + m[5] * v.z,
            m[6] * v.x + m[7] * v.y + m[8] * v.z,
        );
        assert!(close(mv, q.rotate(v), 1e-5));
    }

    #[test]
    fn normalized_handles_degenerate() {
        let q = Quat::new(0.0, 0.0, 0.0, 0.0).normalized();
        assert_eq!(q, Quat::IDENTITY);
        let q2 = Quat::new(2.0, 0.0, 0.0, 0.0).normalized();
        assert!((q2.norm() - 1.0).abs() < 1e-6);
    }
}
