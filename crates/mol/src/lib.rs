//! # mudock-mol — molecule model for docking
//!
//! Data structures shared by every stage of the pipeline:
//!
//! * [`vec3::Vec3`] / [`quat::Quat`] — the geometry the pose transforms
//!   (paper Algorithm 1) are built from;
//! * [`molecule::Molecule`] — atoms, bonds, partial charges;
//! * [`molecule::Topology`] — derived rotatable-bond fragments and the
//!   intramolecular non-bonded pair list (Algorithm 2's intra loop);
//! * [`soa`] — padded structure-of-arrays layouts that make the scoring
//!   and transform loops vectorizable (one of the paper's key code
//!   transformations).

pub mod molecule;
pub mod quat;
pub mod soa;
pub mod vec3;

pub use molecule::{Atom, Bond, Molecule, MoleculeError, Topology, Torsion};
pub use quat::Quat;
pub use soa::{padded_len, AtomStatics, ConformSoA, PAD, PAD_COORD};
pub use vec3::Vec3;
