//! Structure-of-arrays conformation layout.
//!
//! The docking kernels vectorize over atoms (transform, inter-energy) and
//! over pairs (intra-energy); both need coordinates as separate contiguous
//! `x`/`y`/`z` streams, padded to the widest vector so kernels never handle
//! tails. This AoS→SoA restructuring is one of the code transformations the
//! paper lists as required for portable auto-vectorization (Section IX).

use crate::molecule::Molecule;
use crate::vec3::Vec3;

/// Lane-count every array is padded to (AVX-512: 16 f32 lanes).
pub const PAD: usize = 16;

/// Coordinate that padding atoms are parked at: far from any receptor so
/// every distance-cutoff mask removes them, but small enough that `r²`
/// stays comfortably finite in f32.
pub const PAD_COORD: f32 = 1.0e6;

/// Round `n` up to a multiple of [`PAD`].
#[inline]
pub fn padded_len(n: usize) -> usize {
    n.div_ceil(PAD) * PAD
}

/// Mutable per-pose coordinates in SoA form.
#[derive(Clone, Debug, Default)]
pub struct ConformSoA {
    /// Number of real atoms (arrays are longer: padded).
    pub n: usize,
    pub x: Vec<f32>,
    pub y: Vec<f32>,
    pub z: Vec<f32>,
}

impl ConformSoA {
    /// Capture the current coordinates of a molecule.
    pub fn from_molecule(m: &Molecule) -> ConformSoA {
        let n = m.atoms.len();
        let len = padded_len(n);
        let mut c = ConformSoA {
            n,
            x: vec![PAD_COORD; len],
            y: vec![PAD_COORD; len],
            z: vec![PAD_COORD; len],
        };
        for (i, a) in m.atoms.iter().enumerate() {
            c.x[i] = a.pos.x;
            c.y[i] = a.pos.y;
            c.z[i] = a.pos.z;
        }
        c
    }

    /// Allocate a zeroed (padding-parked) conformation for `n` atoms.
    pub fn with_capacity(n: usize) -> ConformSoA {
        let len = padded_len(n);
        ConformSoA {
            n,
            x: vec![PAD_COORD; len],
            y: vec![PAD_COORD; len],
            z: vec![PAD_COORD; len],
        }
    }

    /// Copy real-atom coordinates from another conformation of the same
    /// size (cheap per-generation reset in the docking loop).
    pub fn copy_from(&mut self, other: &ConformSoA) {
        debug_assert_eq!(self.n, other.n);
        self.x.copy_from_slice(&other.x);
        self.y.copy_from_slice(&other.y);
        self.z.copy_from_slice(&other.z);
    }

    /// Padded array length.
    #[inline]
    pub fn len_padded(&self) -> usize {
        self.x.len()
    }

    /// Position of atom `i` as a vector.
    #[inline]
    pub fn pos(&self, i: usize) -> Vec3 {
        Vec3::new(self.x[i], self.y[i], self.z[i])
    }

    /// Set position of atom `i`.
    #[inline]
    pub fn set_pos(&mut self, i: usize, p: Vec3) {
        self.x[i] = p.x;
        self.y[i] = p.y;
        self.z[i] = p.z;
    }

    /// Centroid over real atoms.
    pub fn centroid(&self) -> Vec3 {
        let mut c = Vec3::ZERO;
        for i in 0..self.n {
            c += self.pos(i);
        }
        if self.n > 0 {
            c / self.n as f32
        } else {
            c
        }
    }
}

/// Immutable per-atom scoring inputs in SoA form: type indices (for grid
/// selection and parameter gathers), charges, volumes and solvation
/// parameters. Built once per ligand.
#[derive(Clone, Debug, Default)]
pub struct AtomStatics {
    /// Number of real atoms.
    pub n: usize,
    /// AutoDock type index per atom (i32 so SIMD kernels can load it
    /// directly; padding atoms get type 0 with zeroed charge).
    pub ty: Vec<i32>,
    /// Partial charge.
    pub charge: Vec<f32>,
    /// Atomic fragmental volume.
    pub vol: Vec<f32>,
    /// Atomic solvation parameter `S = solpar + 0.01097·|q|`.
    pub solv: Vec<f32>,
    /// 1.0 for real atoms, 0.0 for padding lanes: kernels multiply
    /// per-atom energies by this so padding contributes exactly zero.
    pub wt: Vec<f32>,
}

impl AtomStatics {
    pub fn from_molecule(m: &Molecule) -> AtomStatics {
        let n = m.atoms.len();
        let len = padded_len(n);
        let mut s = AtomStatics {
            n,
            ty: vec![0; len],
            charge: vec![0.0; len],
            vol: vec![0.0; len],
            solv: vec![0.0; len],
            wt: vec![0.0; len],
        };
        s.wt[..n].fill(1.0);
        for (i, a) in m.atoms.iter().enumerate() {
            s.ty[i] = a.ty.idx() as i32;
            s.charge[i] = a.charge;
            s.vol[i] = mudock_ff::params::type_params(a.ty).vol;
            s.solv[i] = mudock_ff::terms::solvation_param(a.ty, a.charge);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::Atom;
    use mudock_ff::types::AtomType;

    fn mol(n: usize) -> Molecule {
        let mut m = Molecule::new("test");
        for i in 0..n {
            m.atoms.push(Atom::new(
                Vec3::new(i as f32, 2.0 * i as f32, -(i as f32)),
                AtomType::C,
                0.01 * i as f32,
            ));
        }
        m
    }

    #[test]
    fn padding_rounds_up() {
        assert_eq!(padded_len(0), 0);
        assert_eq!(padded_len(1), 16);
        assert_eq!(padded_len(16), 16);
        assert_eq!(padded_len(17), 32);
    }

    #[test]
    fn roundtrip_coordinates() {
        let m = mol(10);
        let c = ConformSoA::from_molecule(&m);
        assert_eq!(c.n, 10);
        assert_eq!(c.len_padded(), 16);
        for (i, a) in m.atoms.iter().enumerate() {
            assert_eq!(c.pos(i), a.pos);
        }
        // Padding parked far away.
        for i in 10..16 {
            assert_eq!(c.x[i], PAD_COORD);
        }
    }

    #[test]
    fn statics_capture_ff_parameters() {
        let mut m = mol(3);
        m.atoms[1].ty = AtomType::OA;
        m.atoms[1].charge = -0.4;
        let s = AtomStatics::from_molecule(&m);
        assert_eq!(s.ty[1], AtomType::OA.idx() as i32);
        assert_eq!(s.charge[1], -0.4);
        assert!(s.vol[1] > 0.0);
        // Solvation parameter includes the |q| term.
        let expected = mudock_ff::terms::solvation_param(AtomType::OA, -0.4);
        assert_eq!(s.solv[1], expected);
        assert_eq!(&s.wt[..3], &[1.0, 1.0, 1.0]);
        assert!(s.wt[3..].iter().all(|&w| w == 0.0));
    }

    #[test]
    fn copy_from_matches() {
        let m = mol(20);
        let a = ConformSoA::from_molecule(&m);
        let mut b = ConformSoA::with_capacity(20);
        b.copy_from(&a);
        for i in 0..20 {
            assert_eq!(a.pos(i), b.pos(i));
        }
    }

    #[test]
    fn centroid_matches_molecule() {
        let m = mol(7);
        let c = ConformSoA::from_molecule(&m);
        let want = m.centroid();
        let got = c.centroid();
        assert!((got - want).norm() < 1e-4);
    }
}
