//! Minimal 3-component `f32` vector used for atom coordinates.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point or direction in 3-D space (Å units throughout the crate).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline(always)]
    pub fn new(x: f32, y: f32, z: f32) -> Vec3 {
        Vec3 { x, y, z }
    }

    #[inline(always)]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline(always)]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    #[inline(always)]
    pub fn norm_sq(self) -> f32 {
        self.dot(self)
    }

    #[inline(always)]
    pub fn norm(self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the same direction. Returns `ZERO` for a zero vector
    /// rather than NaN, which keeps downstream geometry total.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n > 0.0 {
            self / n
        } else {
            Vec3::ZERO
        }
    }

    #[inline(always)]
    pub fn distance(self, o: Vec3) -> f32 {
        (self - o).norm()
    }

    #[inline(always)]
    pub fn distance_sq(self, o: Vec3) -> f32 {
        (self - o).norm_sq()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline(always)]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline(always)]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn mul(self, k: f32) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn div(self, k: f32) -> Vec3 {
        Vec3::new(self.x / k, self.y / k, self.z / k)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl std::fmt::Display for Vec3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), -1.0 + 1.0 + 6.0);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -1.0, 0.5);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-4);
        assert!(c.dot(b).abs() < 1e-4);
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        let n = Vec3::new(3.0, 4.0, 0.0).normalized();
        assert!((n.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn distances() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }
}
