//! Property-based equivalence: every SIMD backend must agree with the
//! scalar reference, operation by operation, over randomized inputs.
//! This is the contract that makes `dispatch!`-based kernels portable.

use mudock_simd::{dispatch, math, Simd, SimdLevel};
use proptest::prelude::*;

const MAX: usize = mudock_simd::MAX_LANES;

/// Apply a lane-wise binary op at `level` to the first MAX lanes.
fn binop(level: SimdLevel, a: &[f32], b: &[f32], op: &str) -> Vec<f32> {
    #[inline(always)]
    fn go<S: Simd>(s: S, a: &[f32], b: &[f32], op: &str) -> Vec<f32> {
        let mut out = vec![0.0f32; MAX];
        let mut i = 0;
        while i + S::LANES <= MAX {
            let va = s.load(&a[i..]);
            let vb = s.load(&b[i..]);
            let v = match op {
                "add" => s.add(va, vb),
                "sub" => s.sub(va, vb),
                "mul" => s.mul(va, vb),
                "div" => s.div(va, vb),
                "min" => s.min(va, vb),
                "max" => s.max(va, vb),
                _ => unreachable!(),
            };
            s.store(v, &mut out[i..]);
            i += S::LANES;
        }
        out
    }
    dispatch!(level, |s| go(s, a, b, op))
}

fn finite() -> impl Strategy<Value = f32> {
    // Away from subnormals and overflow to keep ULP comparisons honest.
    prop_oneof![(-1e6f32..1e6).prop_filter("nonzero-ish", |x| x.abs() > 1e-6)]
}

fn lanes() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(finite(), MAX..=MAX)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn arithmetic_matches_scalar(a in lanes(), b in lanes(),
                                 op in prop::sample::select(vec!["add","sub","mul","div","min","max"])) {
        let want = binop(SimdLevel::Scalar, &a, &b, op);
        for level in SimdLevel::available() {
            let got = binop(level, &a, &b, op);
            for i in 0..MAX {
                let (w, g) = (want[i], got[i]);
                prop_assert!(
                    (g - w).abs() <= 1e-6 * w.abs().max(1e-20) || g == w,
                    "{level} {op} lane {i}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn fma_is_at_least_as_accurate(a in lanes(), b in lanes(), c in lanes()) {
        // mul_add may be fused (more accurate) but must stay within one
        // rounding of the unfused result.
        for level in SimdLevel::available() {
            let got = dispatch!(level, |s| {
                fn go<S: Simd>(s: S, a: &[f32], b: &[f32], c: &[f32]) -> Vec<f32> {
                    let mut out = vec![0.0f32; MAX];
                    let mut i = 0;
                    while i + S::LANES <= MAX {
                        let v = s.mul_add(s.load(&a[i..]), s.load(&b[i..]), s.load(&c[i..]));
                        s.store(v, &mut out[i..]);
                        i += S::LANES;
                    }
                    out
                }
                go(s, &a, &b, &c)
            });
            for i in 0..MAX {
                let exact = (a[i] as f64) * (b[i] as f64) + (c[i] as f64);
                let unfused = a[i] * b[i] + c[i];
                let tol = ((unfused as f64) - exact).abs().max(exact.abs() * 1e-6) + 1e-30;
                prop_assert!(
                    ((got[i] as f64) - exact).abs() <= tol * 1.01,
                    "{level} lane {i}: {} vs exact {exact}",
                    got[i]
                );
            }
        }
    }

    #[test]
    fn compares_and_select_match(a in lanes(), b in lanes()) {
        for level in SimdLevel::available() {
            let got = dispatch!(level, |s| {
                fn go<S: Simd>(s: S, a: &[f32], b: &[f32]) -> Vec<f32> {
                    let mut out = vec![0.0f32; MAX];
                    let mut i = 0;
                    while i + S::LANES <= MAX {
                        let va = s.load(&a[i..]);
                        let vb = s.load(&b[i..]);
                        let m = s.lt(va, vb);
                        s.store(s.select(m, va, vb), &mut out[i..]);
                        i += S::LANES;
                    }
                    out
                }
                go(s, &a, &b)
            });
            for i in 0..MAX {
                let want = if a[i] < b[i] { a[i] } else { b[i] };
                prop_assert_eq!(got[i], want, "{} lane {}", level, i);
            }
        }
    }

    #[test]
    fn reductions_match_sequential(a in lanes()) {
        for level in SimdLevel::available() {
            let (sum, min, max) = dispatch!(level, |s| {
                fn go<S: Simd>(s: S, a: &[f32]) -> (f32, f32, f32) {
                    let mut sum = 0.0;
                    let mut mn = f32::INFINITY;
                    let mut mx = f32::NEG_INFINITY;
                    let mut i = 0;
                    while i + S::LANES <= MAX {
                        let v = s.load(&a[i..]);
                        sum += s.reduce_add(v);
                        mn = mn.min(s.reduce_min(v));
                        mx = mx.max(s.reduce_max(v));
                        i += S::LANES;
                    }
                    (sum, mn, mx)
                }
                go(s, &a)
            });
            let want_sum: f32 = a.iter().sum();
            let want_min = a.iter().cloned().fold(f32::INFINITY, f32::min);
            let want_max = a.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!((sum - want_sum).abs() <= 1e-3 * want_sum.abs().max(1.0), "{level}");
            prop_assert_eq!(min, want_min, "{}", level);
            prop_assert_eq!(max, want_max, "{}", level);
        }
    }

    #[test]
    fn gathers_match_indexing(idx in prop::collection::vec(0i32..512, MAX..=MAX)) {
        let table: Vec<f32> = (0..512).map(|i| (i as f32).sin()).collect();
        for level in SimdLevel::available() {
            let got = dispatch!(level, |s| {
                fn go<S: Simd>(s: S, table: &[f32], idx: &[i32]) -> Vec<f32> {
                    let mut out = vec![0.0f32; MAX];
                    let mut i = 0;
                    while i + S::LANES <= MAX {
                        let v = s.gather(table, s.load_i32(&idx[i..]));
                        s.store(v, &mut out[i..]);
                        i += S::LANES;
                    }
                    out
                }
                go(s, &table, &idx)
            });
            for i in 0..MAX {
                prop_assert_eq!(got[i], table[idx[i] as usize], "{} lane {}", level, i);
            }
        }
    }

    #[test]
    fn exp_agrees_across_backends(a in prop::collection::vec(-80.0f32..80.0, MAX..=MAX)) {
        let reference: Vec<f32> = a.iter().map(|&x| {
            math::exp(mudock_simd::Scalar::new(), x)
        }).collect();
        for level in SimdLevel::available() {
            let got = dispatch!(level, |s| {
                fn go<S: Simd>(s: S, a: &[f32]) -> Vec<f32> {
                    let mut out = vec![0.0f32; MAX];
                    let mut i = 0;
                    while i + S::LANES <= MAX {
                        s.store(math::exp(s, s.load(&a[i..])), &mut out[i..]);
                        i += S::LANES;
                    }
                    out
                }
                go(s, &a)
            });
            for i in 0..MAX {
                let rel = ((got[i] - reference[i]) / reference[i].abs().max(1e-30)).abs();
                // Backends may differ by FMA contraction inside the
                // polynomial: a few ULP.
                prop_assert!(rel < 1e-5, "{level} exp({}) {} vs {}", a[i], got[i], reference[i]);
            }
        }
    }

    #[test]
    fn int_ops_match_scalar(v in prop::collection::vec(-1_000_000i32..1_000_000, MAX..=MAX)) {
        for level in SimdLevel::available() {
            let got = dispatch!(level, |s| {
                fn go<S: Simd>(s: S, v: &[i32]) -> Vec<i32> {
                    let mut out = vec![0i32; MAX];
                    let mut i = 0;
                    while i + S::LANES <= MAX {
                        let a = s.load_i32(&v[i..]);
                        let r = s.i32_add(s.i32_shl::<2>(a), s.splat_i32(7));
                        let r = s.i32_and(r, s.splat_i32(0x00ff_ffff));
                        s.store_i32(r, &mut out[i..]);
                        i += S::LANES;
                    }
                    out
                }
                go(s, &v)
            });
            for i in 0..MAX {
                let want = (((v[i] as u32) << 2).wrapping_add(7) & 0x00ff_ffff) as i32;
                prop_assert_eq!(got[i], want, "{} lane {}", level, i);
            }
        }
    }
}
