//! Width-generic vector math: `exp`, `log`, `powf`, refined reciprocals.
//!
//! The reproduced paper shows that availability of *vectorized math
//! functions* is the single biggest portability cliff: compilers that cannot
//! resolve a vector `expf` (GCC/NVC++ with an old GLIBC on ARM) simply do not
//! vectorize the docking kernels at all (Sections VII-c, VIII-a). Explicit
//! frameworks like Highway sidestep the problem by shipping their own
//! polynomial implementations — which is exactly what this module is.
//!
//! Implementations follow the classic Cephes `expf`/`logf` reductions (the
//! same lineage as `avx_mathfun`, SLEEF's `u10` kernels, and Highway's
//! `Exp`/`Log`). Accuracy is unit- and property-tested against `f64`
//! references: `exp` ≤ 2 ulp over the full finite range, `log` ≤ 2 ulp for
//! normal inputs.

use crate::traits::Simd;

/// Upper clamp for [`exp`]: chosen so the scale factor `2^n` stays finite
/// with round-to-nearest reduction (`n ≤ 127`).
pub const EXP_HI: f32 = 88.376_26;
/// Lower clamp for [`exp`]: below this `expf` underflows to 0 anyway.
pub const EXP_LO: f32 = -87.336_54;

const LOG2E: f32 = std::f32::consts::LOG2_E;
const LN2_HI: f32 = 0.693_359_4;
const LN2_LO: f32 = -2.121_944_4e-4;

/// Vectorized `e^x` (Cephes-style degree-5 polynomial after range
/// reduction).
///
/// Inputs are clamped to `[EXP_LO, EXP_HI]`; NaN propagates.
#[inline(always)]
pub fn exp<S: Simd>(s: S, x: S::V) -> S::V {
    let x = s.min(s.max(x, s.splat(EXP_LO)), s.splat(EXP_HI));

    // n = round(x / ln2); r = x - n*ln2 in two steps for extra bits.
    let n_i = s.round_i32(s.mul(x, s.splat(LOG2E)));
    let n_f = s.i32_to_f32(n_i);
    let r = s.neg_mul_add(n_f, s.splat(LN2_HI), x);
    let r = s.neg_mul_add(n_f, s.splat(LN2_LO), r);

    // e^r = 1 + r + r^2 * P(r) on |r| <= ln2/2.
    let mut p = s.splat(1.987_569_1e-4);
    p = s.mul_add(p, r, s.splat(1.398_199_9e-3));
    p = s.mul_add(p, r, s.splat(8.333_452e-3));
    p = s.mul_add(p, r, s.splat(4.166_579_6e-2));
    p = s.mul_add(p, r, s.splat(1.666_666_6e-1));
    p = s.mul_add(p, r, s.splat(5e-1));
    let r2 = s.mul(r, r);
    let y = s.add(s.mul_add(p, r2, r), s.splat(1.0));

    // y * 2^n via exponent-field construction.
    let scale = s.bitcast_i32_f32(s.i32_shl::<23>(s.i32_add(n_i, s.splat_i32(127))));
    s.mul(y, scale)
}

const SQRT_HALF: f32 = std::f32::consts::FRAC_1_SQRT_2;

/// Vectorized natural logarithm (Cephes-style degree-9 polynomial).
///
/// Defined for strictly positive normal inputs; inputs `<= 0` or denormal
/// are clamped to the smallest positive normal, matching the "fast-math"
/// contract the paper's kernels are compiled under (`-ffast-math` assumes
/// no invalid operands).
#[inline(always)]
pub fn log<S: Simd>(s: S, x: S::V) -> S::V {
    let x = s.max(x, s.splat(f32::MIN_POSITIVE));

    // Split into exponent and mantissa m in [0.5, 1).
    let bits = s.bitcast_f32_i32(x);
    let exp_raw = s.i32_shr::<23>(bits);
    let e = s.i32_to_f32(s.i32_sub(exp_raw, s.splat_i32(126)));
    let mant_bits = s.i32_and(bits, s.splat_i32(0x007f_ffff));
    let m = s.bitcast_i32_f32(s.i32_and(
        s.i32_add(mant_bits, s.splat_i32(0x3f00_0000)),
        s.splat_i32(0x3fff_ffff),
    ));

    // If m < sqrt(1/2): e -= 1, m = 2m - 1; else m = m - 1.
    let small = s.lt(m, s.splat(SQRT_HALF));
    let e = s.sub(e, s.select(small, s.splat(1.0), s.splat(0.0)));
    let m = s.sub(s.select(small, s.add(m, m), m), s.splat(1.0));

    let z = s.mul(m, m);
    let mut p = s.splat(7.037_683_6e-2);
    p = s.mul_add(p, m, s.splat(-1.151_461e-1));
    p = s.mul_add(p, m, s.splat(1.167_699_9e-1));
    p = s.mul_add(p, m, s.splat(-1.242_014_1e-1));
    p = s.mul_add(p, m, s.splat(1.424_932_3e-1));
    p = s.mul_add(p, m, s.splat(-1.666_805_7e-1));
    p = s.mul_add(p, m, s.splat(2.000_071_5e-1));
    p = s.mul_add(p, m, s.splat(-2.499_999_4e-1));
    p = s.mul_add(p, m, s.splat(3.333_333e-1));
    let mut y = s.mul(s.mul(p, m), z);

    y = s.mul_add(e, s.splat(LN2_LO), y);
    y = s.neg_mul_add(s.splat(0.5), z, y);
    let r = s.add(m, y);
    s.mul_add(e, s.splat(LN2_HI), r)
}

/// Vectorized `x^y = exp(y * log(x))` for positive `x`.
#[inline(always)]
pub fn powf<S: Simd>(s: S, x: S::V, y: S::V) -> S::V {
    exp(s, s.mul(y, log(s, x)))
}

/// Reciprocal refined with one Newton-Raphson step from the hardware
/// estimate: `r' = r * (2 - a*r)`. ≈ full f32 accuracy (≤ 2 ulp).
#[inline(always)]
pub fn recip_nr<S: Simd>(s: S, a: S::V) -> S::V {
    let r = s.recip_fast(a);
    s.mul(r, s.neg_mul_add(a, r, s.splat(2.0)))
}

/// Reciprocal square root refined with one Newton-Raphson step:
/// `r' = r * (1.5 - 0.5*a*r*r)`. ≈ full f32 accuracy (≤ 2 ulp).
#[inline(always)]
pub fn rsqrt_nr<S: Simd>(s: S, a: S::V) -> S::V {
    let r = s.rsqrt_fast(a);
    let half_a_r = s.mul(s.mul(s.splat(0.5), a), r);
    s.mul(r, s.neg_mul_add(half_a_r, r, s.splat(1.5)))
}

/// Integer power by repeated squaring, for the Lennard-Jones style
/// `r^-12 / r^-6 / r^-10` terms (kept branch-free for fixed `N` at
/// monomorphization time).
#[inline(always)]
pub fn powi<S: Simd, const N: u32>(s: S, x: S::V) -> S::V {
    let mut acc = s.splat(1.0);
    let mut base = x;
    let mut n = N;
    loop {
        if n & 1 == 1 {
            acc = s.mul(acc, base);
        }
        n >>= 1;
        if n == 0 {
            return acc;
        }
        base = s.mul(base, base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;

    fn rel_err(got: f32, want: f64) -> f64 {
        if want == 0.0 {
            got as f64
        } else {
            ((got as f64 - want) / want).abs()
        }
    }

    #[test]
    fn exp_accuracy_scalar() {
        let s = Scalar::new();
        let mut worst = 0.0f64;
        let mut x = -87.0f32;
        while x < 88.0 {
            let got = exp(s, x);
            let want = (x as f64).exp();
            worst = worst.max(rel_err(got, want));
            x += 0.037;
        }
        assert!(worst < 1e-6, "exp worst rel err {worst}");
    }

    #[test]
    fn exp_edge_cases() {
        let s = Scalar::new();
        assert_eq!(exp(s, 0.0), 1.0);
        assert!(exp(s, -100.0) < 1.2e-38);
        assert!(exp(s, 200.0).is_finite());
        assert!((exp(s, 1.0) - std::f32::consts::E).abs() < 1e-6);
    }

    #[test]
    fn log_accuracy_scalar() {
        let s = Scalar::new();
        let mut worst = 0.0f64;
        for i in 1..4000 {
            let x = i as f32 * 0.013;
            let got = log(s, x);
            let want = (x as f64).ln();
            let err = if want.abs() < 1e-3 {
                (got as f64 - want).abs()
            } else {
                rel_err(got, want)
            };
            worst = worst.max(err);
        }
        assert!(worst < 2e-6, "log worst err {worst}");
    }

    #[test]
    fn log_exp_roundtrip() {
        let s = Scalar::new();
        for i in 1..100 {
            let x = i as f32 * 0.7;
            let rt = exp(s, log(s, x));
            assert!((rt - x).abs() / x < 3e-6, "roundtrip {x} -> {rt}");
        }
    }

    #[test]
    fn powf_matches_std() {
        let s = Scalar::new();
        for (x, y) in [(2.0f32, 3.0f32), (1.5, -2.0), (10.0, 0.5), (3.7, 1.3)] {
            let got = powf(s, x, y);
            let want = x.powf(y);
            assert!(
                (got - want).abs() / want.abs() < 1e-5,
                "powf({x},{y}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn powi_small_powers() {
        let s = Scalar::new();
        assert_eq!(powi::<_, 0>(s, 3.0), 1.0);
        assert_eq!(powi::<_, 1>(s, 3.0), 3.0);
        assert_eq!(powi::<_, 2>(s, 3.0), 9.0);
        assert_eq!(powi::<_, 6>(s, 2.0), 64.0);
        assert_eq!(powi::<_, 12>(s, 2.0), 4096.0);
    }

    #[test]
    fn newton_refinements() {
        let s = Scalar::new();
        for i in 1..50 {
            let a = i as f32 * 1.37;
            assert!((recip_nr(s, a) - 1.0 / a).abs() / (1.0 / a) < 1e-6);
            let rs = rsqrt_nr(s, a);
            assert!((rs - 1.0 / a.sqrt()).abs() * a.sqrt() < 1e-6);
        }
    }
}
