//! The [`Simd`] capability-token trait: a width-generic, safe SIMD interface.
//!
//! A value implementing `Simd` is a zero-sized *proof token* that the CPU
//! features required by the backend are present. Tokens can only be obtained
//! through runtime feature detection ([`crate::SimdLevel::detect`] /
//! `try_new`) or through an `unsafe` escape hatch, which makes every trait
//! method safe to call: the token's existence is the safety argument.
//!
//! This mirrors the role Google Highway plays for C++ in the reproduced
//! paper: one kernel source, instantiated per target vector ISA.

/// Width-generic SIMD operations over `f32` lanes (with the `i32` support
/// operations needed by vector math and table lookups).
///
/// # Writing kernels
///
/// Kernels are written once, generic over `S: Simd`, and must be marked
/// `#[inline(always)]` so they inline into the `#[target_feature]` region
/// created by [`Simd::vectorize`]:
///
/// ```
/// use mudock_simd::{Simd, SimdLevel, dispatch};
///
/// #[inline(always)]
/// fn sum_squares<S: Simd>(s: S, xs: &[f32]) -> f32 {
///     let mut acc = s.splat(0.0);
///     let mut it = xs.chunks_exact(S::LANES);
///     for chunk in it.by_ref() {
///         let v = s.load(chunk);
///         acc = s.mul_add(v, v, acc);
///     }
///     let mut total = s.reduce_add(acc);
///     for &x in it.remainder() {
///         total += x * x;
///     }
///     total
/// }
///
/// let xs: Vec<f32> = (0..100).map(|i| i as f32).collect();
/// let level = SimdLevel::detect();
/// let total = dispatch!(level, |s| sum_squares(s, &xs));
/// assert!((total - 328350.0).abs() < 1.0);
/// ```
pub trait Simd: Copy + Send + Sync + 'static {
    /// Number of `f32` lanes per vector register.
    const LANES: usize;
    /// Human-readable backend name (e.g. `"avx2"`).
    const NAME: &'static str;
    /// Vector register width in bits (e.g. 256 for AVX2).
    const WIDTH_BITS: usize;

    /// Packed `f32` vector.
    type V: Copy + core::fmt::Debug;
    /// Packed `i32` vector (same lane count).
    type VI: Copy + core::fmt::Debug;
    /// Lane mask produced by comparisons.
    type M: Copy;

    /// Run `f` inside a `#[target_feature]`-enabled frame so that the
    /// backend's intrinsics (and any `#[inline(always)]` kernel calling
    /// them) are compiled with the right ISA extensions enabled.
    ///
    /// All non-trivial kernel entry points should go through this (the
    /// [`crate::dispatch!`] macro does so automatically).
    fn vectorize<R, F: FnOnce(Self) -> R>(self, f: F) -> R;

    // ---- construction & memory ----------------------------------------

    /// Broadcast a scalar to all lanes.
    fn splat(self, x: f32) -> Self::V;
    /// Broadcast an `i32` to all lanes.
    fn splat_i32(self, x: i32) -> Self::VI;
    /// All-zero vector.
    #[inline(always)]
    fn zero(self) -> Self::V {
        self.splat(0.0)
    }
    /// `[0.0, 1.0, 2.0, ...]` lane indices.
    fn iota(self) -> Self::V;

    /// Load `LANES` contiguous values. Panics if `src.len() < LANES`.
    fn load(self, src: &[f32]) -> Self::V;
    /// Load up to `LANES` values, filling missing lanes with `fill`.
    fn load_or(self, src: &[f32], fill: f32) -> Self::V;
    /// Load `LANES` contiguous `i32`s. Panics if `src.len() < LANES`.
    fn load_i32(self, src: &[i32]) -> Self::VI;
    /// Store `LANES` values. Panics if `dst.len() < LANES`.
    fn store(self, v: Self::V, dst: &mut [f32]);
    /// Store `LANES` `i32`s. Panics if `dst.len() < LANES`.
    fn store_i32(self, v: Self::VI, dst: &mut [i32]);

    /// Extract one lane (slow; intended for tails, tests and debugging).
    #[inline(always)]
    fn extract(self, v: Self::V, lane: usize) -> f32 {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        let mut buf = [0.0f32; crate::MAX_LANES];
        self.store(v, &mut buf[..Self::LANES]);
        buf[lane]
    }

    /// Extract one integer lane (slow path).
    #[inline(always)]
    fn extract_i32(self, v: Self::VI, lane: usize) -> i32 {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        let mut buf = [0i32; crate::MAX_LANES];
        self.store_i32(v, &mut buf[..Self::LANES]);
        buf[lane]
    }

    // ---- arithmetic ----------------------------------------------------

    fn add(self, a: Self::V, b: Self::V) -> Self::V;
    fn sub(self, a: Self::V, b: Self::V) -> Self::V;
    fn mul(self, a: Self::V, b: Self::V) -> Self::V;
    fn div(self, a: Self::V, b: Self::V) -> Self::V;
    fn min(self, a: Self::V, b: Self::V) -> Self::V;
    fn max(self, a: Self::V, b: Self::V) -> Self::V;
    /// `a * b + c`, contracted to an FMA where the ISA provides one.
    fn mul_add(self, a: Self::V, b: Self::V, c: Self::V) -> Self::V;
    /// `c - a * b`, contracted to an FNMA where the ISA provides one.
    #[inline(always)]
    fn neg_mul_add(self, a: Self::V, b: Self::V, c: Self::V) -> Self::V {
        self.sub(c, self.mul(a, b))
    }
    fn neg(self, a: Self::V) -> Self::V;
    fn abs(self, a: Self::V) -> Self::V;
    fn sqrt(self, a: Self::V) -> Self::V;

    /// Fast reciprocal *estimate* (≈12-bit). Refine with
    /// [`crate::math::recip_nr`] when accuracy matters.
    fn recip_fast(self, a: Self::V) -> Self::V;
    /// Fast reciprocal-sqrt *estimate* (≈12-bit). Refine with
    /// [`crate::math::rsqrt_nr`].
    fn rsqrt_fast(self, a: Self::V) -> Self::V;

    // ---- comparison & selection ----------------------------------------

    fn lt(self, a: Self::V, b: Self::V) -> Self::M;
    fn le(self, a: Self::V, b: Self::V) -> Self::M;
    fn gt(self, a: Self::V, b: Self::V) -> Self::M;
    fn ge(self, a: Self::V, b: Self::V) -> Self::M;
    /// Per-lane `if m { t } else { f }`.
    fn select(self, m: Self::M, t: Self::V, f: Self::V) -> Self::V;
    fn mask_and(self, a: Self::M, b: Self::M) -> Self::M;
    fn mask_or(self, a: Self::M, b: Self::M) -> Self::M;
    /// True if any lane of the mask is set.
    fn any(self, m: Self::M) -> bool;
    /// True if all lanes of the mask are set.
    fn all(self, m: Self::M) -> bool;

    // ---- integer support (vector math, index arithmetic) ---------------

    /// Convert to `i32` with round-to-nearest-even.
    fn round_i32(self, v: Self::V) -> Self::VI;
    /// Convert to `i32` with truncation toward zero (= floor for
    /// non-negative inputs, as produced by grid-coordinate clamping).
    fn trunc_i32(self, v: Self::V) -> Self::VI;
    /// Convert `i32` lanes to `f32`.
    fn i32_to_f32(self, v: Self::VI) -> Self::V;
    /// Reinterpret `f32` bits as `i32`.
    fn bitcast_f32_i32(self, v: Self::V) -> Self::VI;
    /// Reinterpret `i32` bits as `f32`.
    fn bitcast_i32_f32(self, v: Self::VI) -> Self::V;
    fn i32_add(self, a: Self::VI, b: Self::VI) -> Self::VI;
    fn i32_sub(self, a: Self::VI, b: Self::VI) -> Self::VI;
    fn i32_and(self, a: Self::VI, b: Self::VI) -> Self::VI;
    /// Logical shift left by a compile-time immediate.
    fn i32_shl<const IMM: i32>(self, a: Self::VI) -> Self::VI;
    /// Logical shift right by a compile-time immediate.
    fn i32_shr<const IMM: i32>(self, a: Self::VI) -> Self::VI;

    // ---- gathers (the paper's "memory lookups into large constant
    //      data structures" pattern) -------------------------------------

    /// Gather `table[idx[lane]]` for each lane **without bounds checks**.
    ///
    /// # Safety
    /// Every lane of `idx` must satisfy `0 <= idx < table.len()`.
    unsafe fn gather_unchecked(self, table: &[f32], idx: Self::VI) -> Self::V;

    /// Gather `table[idx[lane]]` with per-lane bounds checking.
    /// Panics if any lane is out of range.
    #[inline(always)]
    fn gather(self, table: &[f32], idx: Self::VI) -> Self::V {
        let mut buf = [0i32; crate::MAX_LANES];
        self.store_i32(idx, &mut buf[..Self::LANES]);
        for &i in &buf[..Self::LANES] {
            assert!(
                (i as usize) < table.len() && i >= 0,
                "gather index {i} out of range for table of len {}",
                table.len()
            );
        }
        // SAFETY: all lanes verified in range above.
        unsafe { self.gather_unchecked(table, idx) }
    }

    // ---- horizontal reductions ------------------------------------------

    fn reduce_add(self, v: Self::V) -> f32;
    fn reduce_min(self, v: Self::V) -> f32;
    fn reduce_max(self, v: Self::V) -> f32;
}
