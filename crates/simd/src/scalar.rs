//! Scalar (1-lane) backend: the portable reference implementation.
//!
//! Every other backend is property-tested against this one. It also serves
//! as the fallback on targets without a vector ISA backend, in the same way
//! Google Highway provides `HWY_SCALAR`.

use crate::traits::Simd;

/// Scalar proof token. Always constructible: plain `f32` arithmetic needs
/// no CPU features.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Scalar;

impl Scalar {
    #[inline(always)]
    pub fn new() -> Self {
        Scalar
    }
}

impl Simd for Scalar {
    const LANES: usize = 1;
    const NAME: &'static str = "scalar";
    const WIDTH_BITS: usize = 32;

    type V = f32;
    type VI = i32;
    type M = bool;

    #[inline(always)]
    fn vectorize<R, F: FnOnce(Self) -> R>(self, f: F) -> R {
        f(self)
    }

    #[inline(always)]
    fn splat(self, x: f32) -> f32 {
        x
    }
    #[inline(always)]
    fn splat_i32(self, x: i32) -> i32 {
        x
    }
    #[inline(always)]
    fn iota(self) -> f32 {
        0.0
    }

    #[inline(always)]
    fn load(self, src: &[f32]) -> f32 {
        src[0]
    }
    #[inline(always)]
    fn load_or(self, src: &[f32], fill: f32) -> f32 {
        src.first().copied().unwrap_or(fill)
    }
    #[inline(always)]
    fn load_i32(self, src: &[i32]) -> i32 {
        src[0]
    }
    #[inline(always)]
    fn store(self, v: f32, dst: &mut [f32]) {
        dst[0] = v;
    }
    #[inline(always)]
    fn store_i32(self, v: i32, dst: &mut [i32]) {
        dst[0] = v;
    }

    #[inline(always)]
    fn add(self, a: f32, b: f32) -> f32 {
        a + b
    }
    #[inline(always)]
    fn sub(self, a: f32, b: f32) -> f32 {
        a - b
    }
    #[inline(always)]
    fn mul(self, a: f32, b: f32) -> f32 {
        a * b
    }
    #[inline(always)]
    fn div(self, a: f32, b: f32) -> f32 {
        a / b
    }
    #[inline(always)]
    fn min(self, a: f32, b: f32) -> f32 {
        // IEEE minps semantics: returns b if either is NaN.
        if a < b {
            a
        } else {
            b
        }
    }
    #[inline(always)]
    fn max(self, a: f32, b: f32) -> f32 {
        if a > b {
            a
        } else {
            b
        }
    }
    #[inline(always)]
    fn mul_add(self, a: f32, b: f32, c: f32) -> f32 {
        // Plain mul+add rather than f32::mul_add: the scalar backend models
        // what a compiler emits without FMA contraction, and f32::mul_add
        // lowers to a libm call on targets without fused hardware.
        a * b + c
    }
    #[inline(always)]
    fn neg(self, a: f32) -> f32 {
        -a
    }
    #[inline(always)]
    fn abs(self, a: f32) -> f32 {
        a.abs()
    }
    #[inline(always)]
    fn sqrt(self, a: f32) -> f32 {
        a.sqrt()
    }
    #[inline(always)]
    fn recip_fast(self, a: f32) -> f32 {
        1.0 / a
    }
    #[inline(always)]
    fn rsqrt_fast(self, a: f32) -> f32 {
        1.0 / a.sqrt()
    }

    #[inline(always)]
    fn lt(self, a: f32, b: f32) -> bool {
        a < b
    }
    #[inline(always)]
    fn le(self, a: f32, b: f32) -> bool {
        a <= b
    }
    #[inline(always)]
    fn gt(self, a: f32, b: f32) -> bool {
        a > b
    }
    #[inline(always)]
    fn ge(self, a: f32, b: f32) -> bool {
        a >= b
    }
    #[inline(always)]
    fn select(self, m: bool, t: f32, f: f32) -> f32 {
        if m {
            t
        } else {
            f
        }
    }
    #[inline(always)]
    fn mask_and(self, a: bool, b: bool) -> bool {
        a && b
    }
    #[inline(always)]
    fn mask_or(self, a: bool, b: bool) -> bool {
        a || b
    }
    #[inline(always)]
    fn any(self, m: bool) -> bool {
        m
    }
    #[inline(always)]
    fn all(self, m: bool) -> bool {
        m
    }

    #[inline(always)]
    fn round_i32(self, v: f32) -> i32 {
        // round-to-nearest-even, matching cvtps2dq under default MXCSR.
        let r = v.round_ties_even();
        r as i32
    }
    #[inline(always)]
    fn trunc_i32(self, v: f32) -> i32 {
        v as i32
    }
    #[inline(always)]
    fn i32_to_f32(self, v: i32) -> f32 {
        v as f32
    }
    #[inline(always)]
    fn bitcast_f32_i32(self, v: f32) -> i32 {
        v.to_bits() as i32
    }
    #[inline(always)]
    fn bitcast_i32_f32(self, v: i32) -> f32 {
        f32::from_bits(v as u32)
    }
    #[inline(always)]
    fn i32_add(self, a: i32, b: i32) -> i32 {
        a.wrapping_add(b)
    }
    #[inline(always)]
    fn i32_sub(self, a: i32, b: i32) -> i32 {
        a.wrapping_sub(b)
    }
    #[inline(always)]
    fn i32_and(self, a: i32, b: i32) -> i32 {
        a & b
    }
    #[inline(always)]
    fn i32_shl<const IMM: i32>(self, a: i32) -> i32 {
        ((a as u32) << IMM as u32) as i32
    }
    #[inline(always)]
    fn i32_shr<const IMM: i32>(self, a: i32) -> i32 {
        ((a as u32) >> IMM as u32) as i32
    }

    #[inline(always)]
    unsafe fn gather_unchecked(self, table: &[f32], idx: i32) -> f32 {
        debug_assert!((idx as usize) < table.len());
        *table.get_unchecked(idx as usize)
    }

    #[inline(always)]
    fn reduce_add(self, v: f32) -> f32 {
        v
    }
    #[inline(always)]
    fn reduce_min(self, v: f32) -> f32 {
        v
    }
    #[inline(always)]
    fn reduce_max(self, v: f32) -> f32 {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let s = Scalar::new();
        assert_eq!(s.add(1.0, 2.0), 3.0);
        assert_eq!(s.mul_add(2.0, 3.0, 4.0), 10.0);
        assert_eq!(s.select(true, 1.0, 2.0), 1.0);
        assert_eq!(s.select(false, 1.0, 2.0), 2.0);
        assert_eq!(s.reduce_add(5.0), 5.0);
    }

    #[test]
    fn rounding_is_nearest_even() {
        let s = Scalar::new();
        assert_eq!(s.round_i32(0.5), 0);
        assert_eq!(s.round_i32(1.5), 2);
        assert_eq!(s.round_i32(2.5), 2);
        assert_eq!(s.round_i32(-0.5), 0);
        assert_eq!(s.round_i32(-1.5), -2);
    }

    #[test]
    fn shifts() {
        let s = Scalar::new();
        assert_eq!(s.i32_shl::<23>(1), 1 << 23);
        assert_eq!(s.i32_shr::<23>(127 << 23), 127);
    }

    #[test]
    fn gather_checked() {
        let s = Scalar::new();
        let table = [10.0f32, 20.0, 30.0];
        assert_eq!(s.gather(&table, 2), 30.0);
    }

    #[test]
    #[should_panic]
    fn gather_oob_panics() {
        let s = Scalar::new();
        let table = [10.0f32];
        let _ = s.gather(&table, 3);
    }
}
