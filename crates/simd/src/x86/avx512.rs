//! AVX-512F backend: 512-bit vectors, 16 × f32 lanes, predicate masks.
//!
//! This is the full-width path Highway takes on Sapphire Rapids and that the
//! compilers' cost models avoid (Section VIII-a): explicitly emitting 512-bit
//! instructions is what gives HWY the win on SPR in the paper.

use core::arch::x86_64::*;

use crate::traits::Simd;

/// AVX-512F proof token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Avx512 {
    _priv: (),
}

impl Avx512 {
    /// Returns a token iff the CPU supports AVX-512F.
    #[inline]
    pub fn try_new() -> Option<Self> {
        if std::arch::is_x86_feature_detected!("avx512f") {
            Some(Avx512 { _priv: () })
        } else {
            None
        }
    }

    /// # Safety
    /// The caller asserts the CPU supports AVX-512F.
    #[inline]
    pub unsafe fn new_unchecked() -> Self {
        Avx512 { _priv: () }
    }
}

impl Simd for Avx512 {
    const LANES: usize = 16;
    const NAME: &'static str = "avx512";
    const WIDTH_BITS: usize = 512;

    type V = __m512;
    type VI = __m512i;
    type M = __mmask16;

    #[inline]
    fn vectorize<R, F: FnOnce(Self) -> R>(self, f: F) -> R {
        #[target_feature(enable = "avx512f")]
        #[inline]
        unsafe fn inner<R, F: FnOnce(Avx512) -> R>(s: Avx512, f: F) -> R {
            f(s)
        }
        // SAFETY: token existence proves AVX-512F support.
        unsafe { inner(self, f) }
    }

    #[inline(always)]
    fn splat(self, x: f32) -> __m512 {
        unsafe { _mm512_set1_ps(x) }
    }
    #[inline(always)]
    fn splat_i32(self, x: i32) -> __m512i {
        unsafe { _mm512_set1_epi32(x) }
    }
    #[inline(always)]
    fn iota(self) -> __m512 {
        unsafe {
            _mm512_setr_ps(
                0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0,
                15.0,
            )
        }
    }

    #[inline(always)]
    fn load(self, src: &[f32]) -> __m512 {
        assert!(src.len() >= 16, "load needs at least 16 elements");
        unsafe { _mm512_loadu_ps(src.as_ptr()) }
    }
    #[inline(always)]
    fn load_or(self, src: &[f32], fill: f32) -> __m512 {
        if src.len() >= 16 {
            unsafe { _mm512_loadu_ps(src.as_ptr()) }
        } else {
            let mut buf = [fill; 16];
            buf[..src.len()].copy_from_slice(src);
            unsafe { _mm512_loadu_ps(buf.as_ptr()) }
        }
    }
    #[inline(always)]
    fn load_i32(self, src: &[i32]) -> __m512i {
        assert!(src.len() >= 16, "load_i32 needs at least 16 elements");
        unsafe { _mm512_loadu_si512(src.as_ptr() as *const __m512i) }
    }
    #[inline(always)]
    fn store(self, v: __m512, dst: &mut [f32]) {
        assert!(dst.len() >= 16, "store needs at least 16 elements");
        unsafe { _mm512_storeu_ps(dst.as_mut_ptr(), v) }
    }
    #[inline(always)]
    fn store_i32(self, v: __m512i, dst: &mut [i32]) {
        assert!(dst.len() >= 16, "store_i32 needs at least 16 elements");
        unsafe { _mm512_storeu_si512(dst.as_mut_ptr() as *mut __m512i, v) }
    }

    #[inline(always)]
    fn add(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_add_ps(a, b) }
    }
    #[inline(always)]
    fn sub(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_sub_ps(a, b) }
    }
    #[inline(always)]
    fn mul(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_mul_ps(a, b) }
    }
    #[inline(always)]
    fn div(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_div_ps(a, b) }
    }
    #[inline(always)]
    fn min(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_min_ps(a, b) }
    }
    #[inline(always)]
    fn max(self, a: __m512, b: __m512) -> __m512 {
        unsafe { _mm512_max_ps(a, b) }
    }
    #[inline(always)]
    fn mul_add(self, a: __m512, b: __m512, c: __m512) -> __m512 {
        unsafe { _mm512_fmadd_ps(a, b, c) }
    }
    #[inline(always)]
    fn neg_mul_add(self, a: __m512, b: __m512, c: __m512) -> __m512 {
        unsafe { _mm512_fnmadd_ps(a, b, c) }
    }
    #[inline(always)]
    fn neg(self, a: __m512) -> __m512 {
        unsafe { _mm512_sub_ps(_mm512_setzero_ps(), a) }
    }
    #[inline(always)]
    fn abs(self, a: __m512) -> __m512 {
        unsafe { _mm512_abs_ps(a) }
    }
    #[inline(always)]
    fn sqrt(self, a: __m512) -> __m512 {
        unsafe { _mm512_sqrt_ps(a) }
    }
    #[inline(always)]
    fn recip_fast(self, a: __m512) -> __m512 {
        unsafe { _mm512_rcp14_ps(a) }
    }
    #[inline(always)]
    fn rsqrt_fast(self, a: __m512) -> __m512 {
        unsafe { _mm512_rsqrt14_ps(a) }
    }

    #[inline(always)]
    fn lt(self, a: __m512, b: __m512) -> __mmask16 {
        unsafe { _mm512_cmp_ps_mask::<_CMP_LT_OQ>(a, b) }
    }
    #[inline(always)]
    fn le(self, a: __m512, b: __m512) -> __mmask16 {
        unsafe { _mm512_cmp_ps_mask::<_CMP_LE_OQ>(a, b) }
    }
    #[inline(always)]
    fn gt(self, a: __m512, b: __m512) -> __mmask16 {
        unsafe { _mm512_cmp_ps_mask::<_CMP_GT_OQ>(a, b) }
    }
    #[inline(always)]
    fn ge(self, a: __m512, b: __m512) -> __mmask16 {
        unsafe { _mm512_cmp_ps_mask::<_CMP_GE_OQ>(a, b) }
    }
    #[inline(always)]
    fn select(self, m: __mmask16, t: __m512, f: __m512) -> __m512 {
        unsafe { _mm512_mask_blend_ps(m, f, t) }
    }
    #[inline(always)]
    fn mask_and(self, a: __mmask16, b: __mmask16) -> __mmask16 {
        a & b
    }
    #[inline(always)]
    fn mask_or(self, a: __mmask16, b: __mmask16) -> __mmask16 {
        a | b
    }
    #[inline(always)]
    fn any(self, m: __mmask16) -> bool {
        m != 0
    }
    #[inline(always)]
    fn all(self, m: __mmask16) -> bool {
        m == 0xFFFF
    }

    #[inline(always)]
    fn round_i32(self, v: __m512) -> __m512i {
        unsafe { _mm512_cvtps_epi32(v) }
    }
    #[inline(always)]
    fn trunc_i32(self, v: __m512) -> __m512i {
        unsafe { _mm512_cvttps_epi32(v) }
    }
    #[inline(always)]
    fn i32_to_f32(self, v: __m512i) -> __m512 {
        unsafe { _mm512_cvtepi32_ps(v) }
    }
    #[inline(always)]
    fn bitcast_f32_i32(self, v: __m512) -> __m512i {
        unsafe { _mm512_castps_si512(v) }
    }
    #[inline(always)]
    fn bitcast_i32_f32(self, v: __m512i) -> __m512 {
        unsafe { _mm512_castsi512_ps(v) }
    }
    #[inline(always)]
    fn i32_add(self, a: __m512i, b: __m512i) -> __m512i {
        unsafe { _mm512_add_epi32(a, b) }
    }
    #[inline(always)]
    fn i32_sub(self, a: __m512i, b: __m512i) -> __m512i {
        unsafe { _mm512_sub_epi32(a, b) }
    }
    #[inline(always)]
    fn i32_and(self, a: __m512i, b: __m512i) -> __m512i {
        unsafe { _mm512_and_si512(a, b) }
    }
    #[inline(always)]
    fn i32_shl<const IMM: i32>(self, a: __m512i) -> __m512i {
        // The AVX-512 immediate-shift intrinsics take `u32` immediates, which
        // a `const IMM: i32` generic cannot feed on stable Rust; the variable
        // shift lowers to the same single instruction with a broadcast count.
        unsafe { _mm512_sllv_epi32(a, _mm512_set1_epi32(IMM)) }
    }
    #[inline(always)]
    fn i32_shr<const IMM: i32>(self, a: __m512i) -> __m512i {
        unsafe { _mm512_srlv_epi32(a, _mm512_set1_epi32(IMM)) }
    }

    #[inline(always)]
    unsafe fn gather_unchecked(self, table: &[f32], idx: __m512i) -> __m512 {
        #[cfg(debug_assertions)]
        {
            let mut ix = [0i32; 16];
            _mm512_storeu_si512(ix.as_mut_ptr() as *mut __m512i, idx);
            debug_assert!(ix.iter().all(|&i| i >= 0 && (i as usize) < table.len()));
        }
        _mm512_i32gather_ps::<4>(idx, table.as_ptr())
    }

    #[inline(always)]
    fn reduce_add(self, v: __m512) -> f32 {
        unsafe { _mm512_reduce_add_ps(v) }
    }
    #[inline(always)]
    fn reduce_min(self, v: __m512) -> f32 {
        unsafe { _mm512_reduce_min_ps(v) }
    }
    #[inline(always)]
    fn reduce_max(self, v: __m512) -> f32 {
        unsafe { _mm512_reduce_max_ps(v) }
    }
}
