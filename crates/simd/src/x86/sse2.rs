//! SSE2 backend: 128-bit vectors, 4 × f32 lanes, no FMA.
//!
//! SSE2 is part of the x86-64 baseline, so [`Sse2::try_new`] always succeeds
//! on this architecture. This backend doubles as the paper's observation
//! that the x86 "no-vectorization" floor is still 128-bit SSE code
//! (Section VIII-a): even scalar builds use these registers.

use core::arch::x86_64::*;

use crate::traits::Simd;

/// SSE2 proof token (always available on x86-64).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sse2 {
    _priv: (),
}

impl Sse2 {
    /// SSE2 is mandatory on x86-64; detection always succeeds.
    #[inline]
    pub fn try_new() -> Option<Self> {
        Some(Sse2 { _priv: () })
    }

    /// # Safety
    /// The caller asserts SSE2 support (always true on x86-64).
    #[inline]
    pub unsafe fn new_unchecked() -> Self {
        Sse2 { _priv: () }
    }
}

impl Simd for Sse2 {
    const LANES: usize = 4;
    const NAME: &'static str = "sse2";
    const WIDTH_BITS: usize = 128;

    type V = __m128;
    type VI = __m128i;
    type M = __m128;

    #[inline]
    fn vectorize<R, F: FnOnce(Self) -> R>(self, f: F) -> R {
        #[target_feature(enable = "sse2")]
        #[inline]
        unsafe fn inner<R, F: FnOnce(Sse2) -> R>(s: Sse2, f: F) -> R {
            f(s)
        }
        // SAFETY: token existence proves SSE2 support.
        unsafe { inner(self, f) }
    }

    #[inline(always)]
    fn splat(self, x: f32) -> __m128 {
        unsafe { _mm_set1_ps(x) }
    }
    #[inline(always)]
    fn splat_i32(self, x: i32) -> __m128i {
        unsafe { _mm_set1_epi32(x) }
    }
    #[inline(always)]
    fn iota(self) -> __m128 {
        unsafe { _mm_setr_ps(0.0, 1.0, 2.0, 3.0) }
    }

    #[inline(always)]
    fn load(self, src: &[f32]) -> __m128 {
        assert!(src.len() >= 4, "load needs at least 4 elements");
        unsafe { _mm_loadu_ps(src.as_ptr()) }
    }
    #[inline(always)]
    fn load_or(self, src: &[f32], fill: f32) -> __m128 {
        if src.len() >= 4 {
            unsafe { _mm_loadu_ps(src.as_ptr()) }
        } else {
            let mut buf = [fill; 4];
            buf[..src.len()].copy_from_slice(src);
            unsafe { _mm_loadu_ps(buf.as_ptr()) }
        }
    }
    #[inline(always)]
    fn load_i32(self, src: &[i32]) -> __m128i {
        assert!(src.len() >= 4, "load_i32 needs at least 4 elements");
        unsafe { _mm_loadu_si128(src.as_ptr() as *const __m128i) }
    }
    #[inline(always)]
    fn store(self, v: __m128, dst: &mut [f32]) {
        assert!(dst.len() >= 4, "store needs at least 4 elements");
        unsafe { _mm_storeu_ps(dst.as_mut_ptr(), v) }
    }
    #[inline(always)]
    fn store_i32(self, v: __m128i, dst: &mut [i32]) {
        assert!(dst.len() >= 4, "store_i32 needs at least 4 elements");
        unsafe { _mm_storeu_si128(dst.as_mut_ptr() as *mut __m128i, v) }
    }

    #[inline(always)]
    fn add(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_add_ps(a, b) }
    }
    #[inline(always)]
    fn sub(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_sub_ps(a, b) }
    }
    #[inline(always)]
    fn mul(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_mul_ps(a, b) }
    }
    #[inline(always)]
    fn div(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_div_ps(a, b) }
    }
    #[inline(always)]
    fn min(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_min_ps(a, b) }
    }
    #[inline(always)]
    fn max(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_max_ps(a, b) }
    }
    #[inline(always)]
    fn mul_add(self, a: __m128, b: __m128, c: __m128) -> __m128 {
        // SSE2 has no fused multiply-add: two rounded operations.
        unsafe { _mm_add_ps(_mm_mul_ps(a, b), c) }
    }
    #[inline(always)]
    fn neg(self, a: __m128) -> __m128 {
        unsafe { _mm_xor_ps(a, _mm_set1_ps(-0.0)) }
    }
    #[inline(always)]
    fn abs(self, a: __m128) -> __m128 {
        unsafe { _mm_andnot_ps(_mm_set1_ps(-0.0), a) }
    }
    #[inline(always)]
    fn sqrt(self, a: __m128) -> __m128 {
        unsafe { _mm_sqrt_ps(a) }
    }
    #[inline(always)]
    fn recip_fast(self, a: __m128) -> __m128 {
        unsafe { _mm_rcp_ps(a) }
    }
    #[inline(always)]
    fn rsqrt_fast(self, a: __m128) -> __m128 {
        unsafe { _mm_rsqrt_ps(a) }
    }

    #[inline(always)]
    fn lt(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_cmplt_ps(a, b) }
    }
    #[inline(always)]
    fn le(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_cmple_ps(a, b) }
    }
    #[inline(always)]
    fn gt(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_cmpgt_ps(a, b) }
    }
    #[inline(always)]
    fn ge(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_cmpge_ps(a, b) }
    }
    #[inline(always)]
    fn select(self, m: __m128, t: __m128, f: __m128) -> __m128 {
        unsafe { _mm_or_ps(_mm_and_ps(m, t), _mm_andnot_ps(m, f)) }
    }
    #[inline(always)]
    fn mask_and(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_and_ps(a, b) }
    }
    #[inline(always)]
    fn mask_or(self, a: __m128, b: __m128) -> __m128 {
        unsafe { _mm_or_ps(a, b) }
    }
    #[inline(always)]
    fn any(self, m: __m128) -> bool {
        unsafe { _mm_movemask_ps(m) != 0 }
    }
    #[inline(always)]
    fn all(self, m: __m128) -> bool {
        unsafe { _mm_movemask_ps(m) == 0xF }
    }

    #[inline(always)]
    fn round_i32(self, v: __m128) -> __m128i {
        unsafe { _mm_cvtps_epi32(v) }
    }
    #[inline(always)]
    fn trunc_i32(self, v: __m128) -> __m128i {
        unsafe { _mm_cvttps_epi32(v) }
    }
    #[inline(always)]
    fn i32_to_f32(self, v: __m128i) -> __m128 {
        unsafe { _mm_cvtepi32_ps(v) }
    }
    #[inline(always)]
    fn bitcast_f32_i32(self, v: __m128) -> __m128i {
        unsafe { _mm_castps_si128(v) }
    }
    #[inline(always)]
    fn bitcast_i32_f32(self, v: __m128i) -> __m128 {
        unsafe { _mm_castsi128_ps(v) }
    }
    #[inline(always)]
    fn i32_add(self, a: __m128i, b: __m128i) -> __m128i {
        unsafe { _mm_add_epi32(a, b) }
    }
    #[inline(always)]
    fn i32_sub(self, a: __m128i, b: __m128i) -> __m128i {
        unsafe { _mm_sub_epi32(a, b) }
    }
    #[inline(always)]
    fn i32_and(self, a: __m128i, b: __m128i) -> __m128i {
        unsafe { _mm_and_si128(a, b) }
    }
    #[inline(always)]
    fn i32_shl<const IMM: i32>(self, a: __m128i) -> __m128i {
        unsafe { _mm_slli_epi32::<IMM>(a) }
    }
    #[inline(always)]
    fn i32_shr<const IMM: i32>(self, a: __m128i) -> __m128i {
        unsafe { _mm_srli_epi32::<IMM>(a) }
    }

    #[inline(always)]
    unsafe fn gather_unchecked(self, table: &[f32], idx: __m128i) -> __m128 {
        // SSE2 has no hardware gather: emulate with scalar loads, which is
        // exactly what compilers emit for lookup loops at this ISA level.
        let mut ix = [0i32; 4];
        _mm_storeu_si128(ix.as_mut_ptr() as *mut __m128i, idx);
        debug_assert!(ix.iter().all(|&i| (i as usize) < table.len()));
        _mm_setr_ps(
            *table.get_unchecked(ix[0] as usize),
            *table.get_unchecked(ix[1] as usize),
            *table.get_unchecked(ix[2] as usize),
            *table.get_unchecked(ix[3] as usize),
        )
    }

    #[inline(always)]
    fn reduce_add(self, v: __m128) -> f32 {
        unsafe {
            let hi = _mm_movehl_ps(v, v);
            let sum2 = _mm_add_ps(v, hi);
            let lane1 = _mm_shuffle_ps::<0b01>(sum2, sum2);
            _mm_cvtss_f32(_mm_add_ss(sum2, lane1))
        }
    }
    #[inline(always)]
    fn reduce_min(self, v: __m128) -> f32 {
        unsafe {
            let hi = _mm_movehl_ps(v, v);
            let m2 = _mm_min_ps(v, hi);
            let lane1 = _mm_shuffle_ps::<0b01>(m2, m2);
            _mm_cvtss_f32(_mm_min_ss(m2, lane1))
        }
    }
    #[inline(always)]
    fn reduce_max(self, v: __m128) -> f32 {
        unsafe {
            let hi = _mm_movehl_ps(v, v);
            let m2 = _mm_max_ps(v, hi);
            let lane1 = _mm_shuffle_ps::<0b01>(m2, m2);
            _mm_cvtss_f32(_mm_max_ss(m2, lane1))
        }
    }
}
