//! AVX2+FMA backend: 256-bit vectors, 8 × f32 lanes, fused multiply-add and
//! hardware gathers.
//!
//! This is the width that LLVM's cost model prefers on Sapphire Rapids (the
//! "256-bit cap" discussed in Section VIII-a of the paper); the AVX-512
//! backend models what Highway does by explicitly emitting full-width code.

use core::arch::x86_64::*;

use crate::traits::Simd;

/// AVX2+FMA proof token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Avx2 {
    _priv: (),
}

impl Avx2 {
    /// Returns a token iff the CPU supports both AVX2 and FMA.
    #[inline]
    pub fn try_new() -> Option<Self> {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            Some(Avx2 { _priv: () })
        } else {
            None
        }
    }

    /// # Safety
    /// The caller asserts the CPU supports AVX2 and FMA.
    #[inline]
    pub unsafe fn new_unchecked() -> Self {
        Avx2 { _priv: () }
    }
}

impl Simd for Avx2 {
    const LANES: usize = 8;
    const NAME: &'static str = "avx2";
    const WIDTH_BITS: usize = 256;

    type V = __m256;
    type VI = __m256i;
    type M = __m256;

    #[inline]
    fn vectorize<R, F: FnOnce(Self) -> R>(self, f: F) -> R {
        #[target_feature(enable = "avx2,fma")]
        #[inline]
        unsafe fn inner<R, F: FnOnce(Avx2) -> R>(s: Avx2, f: F) -> R {
            f(s)
        }
        // SAFETY: token existence proves AVX2+FMA support.
        unsafe { inner(self, f) }
    }

    #[inline(always)]
    fn splat(self, x: f32) -> __m256 {
        unsafe { _mm256_set1_ps(x) }
    }
    #[inline(always)]
    fn splat_i32(self, x: i32) -> __m256i {
        unsafe { _mm256_set1_epi32(x) }
    }
    #[inline(always)]
    fn iota(self) -> __m256 {
        unsafe { _mm256_setr_ps(0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0) }
    }

    #[inline(always)]
    fn load(self, src: &[f32]) -> __m256 {
        assert!(src.len() >= 8, "load needs at least 8 elements");
        unsafe { _mm256_loadu_ps(src.as_ptr()) }
    }
    #[inline(always)]
    fn load_or(self, src: &[f32], fill: f32) -> __m256 {
        if src.len() >= 8 {
            unsafe { _mm256_loadu_ps(src.as_ptr()) }
        } else {
            let mut buf = [fill; 8];
            buf[..src.len()].copy_from_slice(src);
            unsafe { _mm256_loadu_ps(buf.as_ptr()) }
        }
    }
    #[inline(always)]
    fn load_i32(self, src: &[i32]) -> __m256i {
        assert!(src.len() >= 8, "load_i32 needs at least 8 elements");
        unsafe { _mm256_loadu_si256(src.as_ptr() as *const __m256i) }
    }
    #[inline(always)]
    fn store(self, v: __m256, dst: &mut [f32]) {
        assert!(dst.len() >= 8, "store needs at least 8 elements");
        unsafe { _mm256_storeu_ps(dst.as_mut_ptr(), v) }
    }
    #[inline(always)]
    fn store_i32(self, v: __m256i, dst: &mut [i32]) {
        assert!(dst.len() >= 8, "store_i32 needs at least 8 elements");
        unsafe { _mm256_storeu_si256(dst.as_mut_ptr() as *mut __m256i, v) }
    }

    #[inline(always)]
    fn add(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_add_ps(a, b) }
    }
    #[inline(always)]
    fn sub(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_sub_ps(a, b) }
    }
    #[inline(always)]
    fn mul(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_mul_ps(a, b) }
    }
    #[inline(always)]
    fn div(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_div_ps(a, b) }
    }
    #[inline(always)]
    fn min(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_min_ps(a, b) }
    }
    #[inline(always)]
    fn max(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_max_ps(a, b) }
    }
    #[inline(always)]
    fn mul_add(self, a: __m256, b: __m256, c: __m256) -> __m256 {
        unsafe { _mm256_fmadd_ps(a, b, c) }
    }
    #[inline(always)]
    fn neg_mul_add(self, a: __m256, b: __m256, c: __m256) -> __m256 {
        unsafe { _mm256_fnmadd_ps(a, b, c) }
    }
    #[inline(always)]
    fn neg(self, a: __m256) -> __m256 {
        unsafe { _mm256_xor_ps(a, _mm256_set1_ps(-0.0)) }
    }
    #[inline(always)]
    fn abs(self, a: __m256) -> __m256 {
        unsafe { _mm256_andnot_ps(_mm256_set1_ps(-0.0), a) }
    }
    #[inline(always)]
    fn sqrt(self, a: __m256) -> __m256 {
        unsafe { _mm256_sqrt_ps(a) }
    }
    #[inline(always)]
    fn recip_fast(self, a: __m256) -> __m256 {
        unsafe { _mm256_rcp_ps(a) }
    }
    #[inline(always)]
    fn rsqrt_fast(self, a: __m256) -> __m256 {
        unsafe { _mm256_rsqrt_ps(a) }
    }

    #[inline(always)]
    fn lt(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_cmp_ps::<_CMP_LT_OQ>(a, b) }
    }
    #[inline(always)]
    fn le(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_cmp_ps::<_CMP_LE_OQ>(a, b) }
    }
    #[inline(always)]
    fn gt(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_cmp_ps::<_CMP_GT_OQ>(a, b) }
    }
    #[inline(always)]
    fn ge(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_cmp_ps::<_CMP_GE_OQ>(a, b) }
    }
    #[inline(always)]
    fn select(self, m: __m256, t: __m256, f: __m256) -> __m256 {
        unsafe { _mm256_blendv_ps(f, t, m) }
    }
    #[inline(always)]
    fn mask_and(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_and_ps(a, b) }
    }
    #[inline(always)]
    fn mask_or(self, a: __m256, b: __m256) -> __m256 {
        unsafe { _mm256_or_ps(a, b) }
    }
    #[inline(always)]
    fn any(self, m: __m256) -> bool {
        unsafe { _mm256_movemask_ps(m) != 0 }
    }
    #[inline(always)]
    fn all(self, m: __m256) -> bool {
        unsafe { _mm256_movemask_ps(m) == 0xFF }
    }

    #[inline(always)]
    fn round_i32(self, v: __m256) -> __m256i {
        unsafe { _mm256_cvtps_epi32(v) }
    }
    #[inline(always)]
    fn trunc_i32(self, v: __m256) -> __m256i {
        unsafe { _mm256_cvttps_epi32(v) }
    }
    #[inline(always)]
    fn i32_to_f32(self, v: __m256i) -> __m256 {
        unsafe { _mm256_cvtepi32_ps(v) }
    }
    #[inline(always)]
    fn bitcast_f32_i32(self, v: __m256) -> __m256i {
        unsafe { _mm256_castps_si256(v) }
    }
    #[inline(always)]
    fn bitcast_i32_f32(self, v: __m256i) -> __m256 {
        unsafe { _mm256_castsi256_ps(v) }
    }
    #[inline(always)]
    fn i32_add(self, a: __m256i, b: __m256i) -> __m256i {
        unsafe { _mm256_add_epi32(a, b) }
    }
    #[inline(always)]
    fn i32_sub(self, a: __m256i, b: __m256i) -> __m256i {
        unsafe { _mm256_sub_epi32(a, b) }
    }
    #[inline(always)]
    fn i32_and(self, a: __m256i, b: __m256i) -> __m256i {
        unsafe { _mm256_and_si256(a, b) }
    }
    #[inline(always)]
    fn i32_shl<const IMM: i32>(self, a: __m256i) -> __m256i {
        unsafe { _mm256_slli_epi32::<IMM>(a) }
    }
    #[inline(always)]
    fn i32_shr<const IMM: i32>(self, a: __m256i) -> __m256i {
        unsafe { _mm256_srli_epi32::<IMM>(a) }
    }

    #[inline(always)]
    unsafe fn gather_unchecked(self, table: &[f32], idx: __m256i) -> __m256 {
        #[cfg(debug_assertions)]
        {
            let mut ix = [0i32; 8];
            _mm256_storeu_si256(ix.as_mut_ptr() as *mut __m256i, idx);
            debug_assert!(ix.iter().all(|&i| i >= 0 && (i as usize) < table.len()));
        }
        _mm256_i32gather_ps::<4>(table.as_ptr(), idx)
    }

    #[inline(always)]
    fn reduce_add(self, v: __m256) -> f32 {
        unsafe {
            let lo = _mm256_castps256_ps128(v);
            let hi = _mm256_extractf128_ps::<1>(v);
            let s = _mm_add_ps(lo, hi);
            let sh = _mm_movehl_ps(s, s);
            let s2 = _mm_add_ps(s, sh);
            let lane1 = _mm_shuffle_ps::<0b01>(s2, s2);
            _mm_cvtss_f32(_mm_add_ss(s2, lane1))
        }
    }
    #[inline(always)]
    fn reduce_min(self, v: __m256) -> f32 {
        unsafe {
            let lo = _mm256_castps256_ps128(v);
            let hi = _mm256_extractf128_ps::<1>(v);
            let s = _mm_min_ps(lo, hi);
            let sh = _mm_movehl_ps(s, s);
            let s2 = _mm_min_ps(s, sh);
            let lane1 = _mm_shuffle_ps::<0b01>(s2, s2);
            _mm_cvtss_f32(_mm_min_ss(s2, lane1))
        }
    }
    #[inline(always)]
    fn reduce_max(self, v: __m256) -> f32 {
        unsafe {
            let lo = _mm256_castps256_ps128(v);
            let hi = _mm256_extractf128_ps::<1>(v);
            let s = _mm_max_ps(lo, hi);
            let sh = _mm_movehl_ps(s, s);
            let s2 = _mm_max_ps(s, sh);
            let lane1 = _mm_shuffle_ps::<0b01>(s2, s2);
            _mm_cvtss_f32(_mm_max_ss(s2, lane1))
        }
    }
}
