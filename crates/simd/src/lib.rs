//! # mudock-simd — portable explicit SIMD (the Google Highway analogue)
//!
//! The reproduced paper (CLUSTER 2025) compares *compiler auto-vectorization*
//! of a single scalar codebase against *explicit vectorization* through
//! Google Highway. This crate plays Highway's role for the Rust
//! reproduction:
//!
//! * a width-generic [`Simd`] trait with backends for scalar, SSE2 (128-bit),
//!   AVX2+FMA (256-bit) and AVX-512F (512-bit) — selected at **runtime** via
//!   [`SimdLevel::detect`], so one binary adapts to the host CPU exactly like
//!   Highway's dynamic dispatch;
//! * vector math ([`math::exp`], [`math::log`], …) standing in for
//!   libmvec/ArmPL/SLEEF, because the paper shows vectorized math libraries
//!   are the decisive portability factor;
//! * a [`dispatch!`] macro that instantiates an `#[inline(always)]` kernel
//!   once per backend inside a `#[target_feature]` region.
//!
//! Soundness model: backend tokens ([`Sse2`], [`Avx2`], [`Avx512`]) are
//! zero-sized proofs of CPU support, only constructible through feature
//! detection (or `unsafe`). Every intrinsic call is therefore safe behind
//! the token.
//!
//! ## Quick example
//!
//! ```
//! use mudock_simd::{dispatch, math, Simd, SimdLevel};
//!
//! #[inline(always)]
//! fn softmax_denominator<S: Simd>(s: S, xs: &[f32]) -> f32 {
//!     let mut acc = s.splat(0.0);
//!     let mut it = xs.chunks_exact(S::LANES);
//!     for c in it.by_ref() {
//!         acc = s.add(acc, math::exp(s, s.load(c)));
//!     }
//!     let mut total = s.reduce_add(acc);
//!     for &x in it.remainder() {
//!         total += x.exp();
//!     }
//!     total
//! }
//!
//! let xs = vec![0.5f32; 100];
//! let z = dispatch!(SimdLevel::detect(), |s| softmax_denominator(s, &xs));
//! assert!((z - 100.0 * 0.5f32.exp()).abs() < 1e-3);
//! ```

pub mod math;
pub mod ops;
pub mod scalar;
pub mod traits;

#[cfg(target_arch = "x86_64")]
pub mod x86 {
    pub mod avx2;
    pub mod avx512;
    pub mod sse2;
}

pub use scalar::Scalar;
pub use traits::Simd;
#[cfg(target_arch = "x86_64")]
pub use x86::{avx2::Avx2, avx512::Avx512, sse2::Sse2};

/// Maximum lane count across all backends (AVX-512: 16 × f32).
pub const MAX_LANES: usize = 16;

/// The vector instruction-set levels this crate can target, ordered from
/// narrowest to widest.
///
/// This is the Rust-side analogue of Highway's `HWY_TARGETS`: the level is a
/// *runtime* choice, so experiments can pin a level (`--simd=sse2`) or take
/// the best the host offers ([`SimdLevel::detect`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Plain scalar f32 code (1 lane). Portable reference.
    Scalar,
    /// SSE2: 128-bit, 4 lanes, no FMA (the x86-64 baseline).
    Sse2,
    /// AVX2 + FMA: 256-bit, 8 lanes.
    Avx2,
    /// AVX-512F: 512-bit, 16 lanes.
    Avx512,
}

impl SimdLevel {
    /// All levels, narrowest first.
    pub const ALL: [SimdLevel; 4] = [
        SimdLevel::Scalar,
        SimdLevel::Sse2,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ];

    /// Pick the widest level supported by the host CPU.
    pub fn detect() -> SimdLevel {
        #[cfg(target_arch = "x86_64")]
        {
            if x86::avx512::Avx512::try_new().is_some() {
                return SimdLevel::Avx512;
            }
            if x86::avx2::Avx2::try_new().is_some() {
                return SimdLevel::Avx2;
            }
            SimdLevel::Sse2
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            SimdLevel::Scalar
        }
    }

    /// Is this level usable on the current host?
    pub fn is_supported(self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            match self {
                SimdLevel::Scalar => true,
                SimdLevel::Sse2 => x86::sse2::Sse2::try_new().is_some(),
                SimdLevel::Avx2 => x86::avx2::Avx2::try_new().is_some(),
                SimdLevel::Avx512 => x86::avx512::Avx512::try_new().is_some(),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            matches!(self, SimdLevel::Scalar)
        }
    }

    /// Every level supported on this host, narrowest first.
    pub fn available() -> Vec<SimdLevel> {
        Self::ALL.into_iter().filter(|l| l.is_supported()).collect()
    }

    /// f32 lanes per vector at this level.
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 => 4,
            SimdLevel::Avx2 => 8,
            SimdLevel::Avx512 => 16,
        }
    }

    /// Register width in bits.
    pub fn width_bits(self) -> usize {
        self.lanes() * 32
    }

    /// Short lowercase name (`"avx2"`, …).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// Parse a level name as used on experiment command lines.
    pub fn parse(name: &str) -> Option<SimdLevel> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "sse2" | "sse" | "128" => Some(SimdLevel::Sse2),
            "avx2" | "256" => Some(SimdLevel::Avx2),
            "avx512" | "avx-512" | "512" => Some(SimdLevel::Avx512),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Instantiate a width-generic kernel at a runtime-selected [`SimdLevel`].
///
/// `$body` is evaluated with `$s` bound to the backend token, inside that
/// backend's `#[target_feature]` region, once per possible level
/// (monomorphized). Panics if the requested level is not supported by the
/// host CPU.
///
/// ```
/// use mudock_simd::{dispatch, Simd, SimdLevel};
///
/// #[inline(always)]
/// fn dot<S: Simd>(s: S, a: &[f32], b: &[f32]) -> f32 {
///     let mut acc = s.splat(0.0);
///     let n = a.len() / S::LANES * S::LANES;
///     for (ca, cb) in a[..n].chunks_exact(S::LANES).zip(b[..n].chunks_exact(S::LANES)) {
///         acc = s.mul_add(s.load(ca), s.load(cb), acc);
///     }
///     let mut t = s.reduce_add(acc);
///     for i in n..a.len() {
///         t += a[i] * b[i];
///     }
///     t
/// }
///
/// let a = vec![2.0f32; 37];
/// let b = vec![3.0f32; 37];
/// for level in SimdLevel::available() {
///     let d = dispatch!(level, |s| dot(s, &a, &b));
///     assert_eq!(d, 2.0 * 3.0 * 37.0);
/// }
/// ```
#[macro_export]
macro_rules! dispatch {
    ($level:expr, |$s:ident| $body:expr) => {{
        match $level {
            $crate::SimdLevel::Scalar => {
                let tok = $crate::Scalar::new();
                $crate::Simd::vectorize(tok, |$s| $body)
            }
            #[cfg(target_arch = "x86_64")]
            $crate::SimdLevel::Sse2 => {
                let tok = $crate::Sse2::try_new().expect("SSE2 unsupported on this CPU");
                $crate::Simd::vectorize(tok, |$s| $body)
            }
            #[cfg(target_arch = "x86_64")]
            $crate::SimdLevel::Avx2 => {
                let tok = $crate::Avx2::try_new().expect("AVX2+FMA unsupported on this CPU");
                $crate::Simd::vectorize(tok, |$s| $body)
            }
            #[cfg(target_arch = "x86_64")]
            $crate::SimdLevel::Avx512 => {
                let tok = $crate::Avx512::try_new().expect("AVX-512F unsupported on this CPU");
                $crate::Simd::vectorize(tok, |$s| $body)
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => {
                let tok = $crate::Scalar::new();
                $crate::Simd::vectorize(tok, |$s| $body)
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_returns_supported_level() {
        let l = SimdLevel::detect();
        assert!(l.is_supported());
        // Detection picks the widest available level.
        for wider in SimdLevel::ALL.iter().filter(|w| **w > l) {
            assert!(!wider.is_supported());
        }
    }

    #[test]
    fn available_is_monotone_prefix() {
        let avail = SimdLevel::available();
        assert!(avail.contains(&SimdLevel::Scalar));
        // Sorted narrowest-first.
        let mut sorted = avail.clone();
        sorted.sort();
        assert_eq!(avail, sorted);
    }

    #[test]
    fn names_roundtrip() {
        for l in SimdLevel::ALL {
            assert_eq!(SimdLevel::parse(l.name()), Some(l));
        }
        assert_eq!(SimdLevel::parse("AVX2"), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("bogus"), None);
    }

    #[test]
    fn lanes_and_width() {
        assert_eq!(SimdLevel::Scalar.lanes(), 1);
        assert_eq!(SimdLevel::Sse2.lanes(), 4);
        assert_eq!(SimdLevel::Avx2.lanes(), 8);
        assert_eq!(SimdLevel::Avx512.lanes(), 16);
        assert_eq!(SimdLevel::Avx512.width_bits(), 512);
    }

    #[inline(always)]
    fn composite_kernel<S: Simd>(s: S, xs: &[f32]) -> f32 {
        // Exercises arithmetic, compares, select, gather, reductions.
        let table: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        let mut acc = s.splat(0.0);
        for c in xs.chunks_exact(S::LANES) {
            let v = s.load(c);
            let clamped = s.min(s.max(v, s.splat(0.0)), s.splat(63.0));
            let idx = s.round_i32(clamped);
            let t = s.gather(&table, idx);
            let m = s.gt(v, s.splat(10.0));
            let picked = s.select(m, t, s.neg(t));
            acc = s.mul_add(picked, s.splat(2.0), acc);
        }
        s.reduce_add(acc)
    }

    #[test]
    fn all_backends_agree_on_composite_kernel() {
        let xs: Vec<f32> = (0..64).map(|i| (i as f32 * 0.7) - 5.0).collect();
        let reference = dispatch!(SimdLevel::Scalar, |s| composite_kernel(s, &xs));
        for level in SimdLevel::available() {
            let got = dispatch!(level, |s| composite_kernel(s, &xs));
            assert!(
                (got - reference).abs() <= 1e-4 * reference.abs().max(1.0),
                "{level}: {got} vs scalar {reference}"
            );
        }
    }
}
