//! Slice-level vector operations built on [`crate::Simd`].
//!
//! These are the "utility kernels" counterpart of Highway's `hwy/contrib`
//! algorithms: convenient entry points used by benchmarks, tests, and the
//! simpler call-sites in the docking engine. Each handles unaligned lengths
//! with a scalar tail.

use crate::math;
use crate::traits::Simd;
use crate::SimdLevel;

#[inline(always)]
fn exp_slice_kernel<S: Simd>(s: S, xs: &[f32], out: &mut [f32]) {
    assert_eq!(xs.len(), out.len());
    let n = xs.len() / S::LANES * S::LANES;
    for (c, o) in xs[..n]
        .chunks_exact(S::LANES)
        .zip(out[..n].chunks_exact_mut(S::LANES))
    {
        let v = math::exp(s, s.load(c));
        s.store(v, o);
    }
    for i in n..xs.len() {
        out[i] = math::exp(crate::Scalar::new(), xs[i]);
    }
}

/// `out[i] = e^xs[i]` using the polynomial vector exponential.
pub fn exp_slice(level: SimdLevel, xs: &[f32], out: &mut [f32]) {
    crate::dispatch!(level, |s| exp_slice_kernel(s, xs, out));
}

#[inline(always)]
fn rsqrt_slice_kernel<S: Simd>(s: S, xs: &[f32], out: &mut [f32]) {
    assert_eq!(xs.len(), out.len());
    let n = xs.len() / S::LANES * S::LANES;
    for (c, o) in xs[..n]
        .chunks_exact(S::LANES)
        .zip(out[..n].chunks_exact_mut(S::LANES))
    {
        let v = math::rsqrt_nr(s, s.load(c));
        s.store(v, o);
    }
    for i in n..xs.len() {
        out[i] = 1.0 / xs[i].sqrt();
    }
}

/// `out[i] = 1/sqrt(xs[i])` with Newton-refined hardware estimates.
pub fn rsqrt_slice(level: SimdLevel, xs: &[f32], out: &mut [f32]) {
    crate::dispatch!(level, |s| rsqrt_slice_kernel(s, xs, out));
}

#[inline(always)]
fn dot_kernel<S: Simd>(s: S, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let n = a.len() / S::LANES * S::LANES;
    let mut acc = s.splat(0.0);
    for (ca, cb) in a[..n]
        .chunks_exact(S::LANES)
        .zip(b[..n].chunks_exact(S::LANES))
    {
        acc = s.mul_add(s.load(ca), s.load(cb), acc);
    }
    let mut t = s.reduce_add(acc);
    for i in n..a.len() {
        t += a[i] * b[i];
    }
    t
}

/// Dot product `Σ a[i]·b[i]`.
pub fn dot(level: SimdLevel, a: &[f32], b: &[f32]) -> f32 {
    crate::dispatch!(level, |s| dot_kernel(s, a, b))
}

#[inline(always)]
fn axpy_kernel<S: Simd>(s: S, alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len());
    let va = s.splat(alpha);
    let n = x.len() / S::LANES * S::LANES;
    for (cx, cy) in x[..n]
        .chunks_exact(S::LANES)
        .zip(y[..n].chunks_exact_mut(S::LANES))
    {
        let v = s.mul_add(va, s.load(cx), s.load(cy));
        s.store(v, cy);
    }
    for i in n..x.len() {
        y[i] += alpha * x[i];
    }
}

/// `y[i] += alpha * x[i]` (BLAS-1 axpy).
pub fn axpy(level: SimdLevel, alpha: f32, x: &[f32], y: &mut [f32]) {
    crate::dispatch!(level, |s| axpy_kernel(s, alpha, x, y));
}

#[inline(always)]
fn sum_kernel<S: Simd>(s: S, xs: &[f32]) -> f32 {
    let n = xs.len() / S::LANES * S::LANES;
    let mut acc = s.splat(0.0);
    for c in xs[..n].chunks_exact(S::LANES) {
        acc = s.add(acc, s.load(c));
    }
    let mut t = s.reduce_add(acc);
    for &x in &xs[n..] {
        t += x;
    }
    t
}

/// Horizontal sum of a slice.
pub fn sum(level: SimdLevel, xs: &[f32]) -> f32 {
    crate::dispatch!(level, |s| sum_kernel(s, xs))
}

#[inline(always)]
fn gather_sum_kernel<S: Simd>(s: S, table: &[f32], idx: &[i32]) -> f32 {
    let n = idx.len() / S::LANES * S::LANES;
    let mut acc = s.splat(0.0);
    for c in idx[..n].chunks_exact(S::LANES) {
        let iv = s.load_i32(c);
        acc = s.add(acc, s.gather(table, iv));
    }
    let mut t = s.reduce_add(acc);
    for &i in &idx[n..] {
        t += table[i as usize];
    }
    t
}

/// `Σ table[idx[i]]` — the paper's "memory lookups into large constant data
/// structures" pattern in isolation (microbenchmark for the inter-energy
/// access pattern).
pub fn gather_sum(level: SimdLevel, table: &[f32], idx: &[i32]) -> f32 {
    crate::dispatch!(level, |s| gather_sum_kernel(s, table, idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels() -> Vec<SimdLevel> {
        SimdLevel::available()
    }

    #[test]
    fn exp_slice_matches_std_on_all_levels() {
        let xs: Vec<f32> = (0..131).map(|i| (i as f32) * 0.17 - 11.0).collect();
        for level in levels() {
            let mut out = vec![0.0f32; xs.len()];
            exp_slice(level, &xs, &mut out);
            for (&x, &o) in xs.iter().zip(&out) {
                let want = x.exp();
                assert!(
                    (o - want).abs() <= 2e-6 * want.max(1e-30),
                    "{level}: exp({x}) = {o}, want {want}"
                );
            }
        }
    }

    #[test]
    fn dot_handles_tails() {
        for len in [0usize, 1, 3, 4, 7, 8, 15, 16, 17, 33, 100] {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32) * 0.5).collect();
            let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            for level in levels() {
                let got = dot(level, &a, &b);
                assert!(
                    (got - want).abs() <= want.abs() * 1e-5 + 1e-5,
                    "{level} len={len}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn axpy_all_levels() {
        for level in levels() {
            let x: Vec<f32> = (0..37).map(|i| i as f32).collect();
            let mut y = vec![1.0f32; 37];
            axpy(level, 2.0, &x, &mut y);
            for (i, &v) in y.iter().enumerate() {
                assert_eq!(v, 1.0 + 2.0 * i as f32, "{level} lane {i}");
            }
        }
    }

    #[test]
    fn gather_sum_all_levels() {
        let table: Vec<f32> = (0..256).map(|i| (i * i) as f32).collect();
        let idx: Vec<i32> = (0..99).map(|i| (i * 37) % 256).collect();
        let want: f32 = idx.iter().map(|&i| table[i as usize]).sum();
        for level in levels() {
            let got = gather_sum(level, &table, &idx);
            assert_eq!(got, want, "{level}");
        }
    }

    #[test]
    fn sum_matches_sequential() {
        let xs: Vec<f32> = (0..1000).map(|i| (i % 17) as f32 - 8.0).collect();
        let want: f32 = xs.iter().sum();
        for level in levels() {
            let got = super::sum(level, &xs);
            assert!((got - want).abs() < 1e-3, "{level}: {got} vs {want}");
        }
    }

    #[test]
    fn rsqrt_slice_accuracy() {
        let xs: Vec<f32> = (1..200).map(|i| i as f32 * 0.9).collect();
        for level in levels() {
            let mut out = vec![0.0f32; xs.len()];
            rsqrt_slice(level, &xs, &mut out);
            for (&x, &o) in xs.iter().zip(&out) {
                let want = 1.0 / x.sqrt();
                assert!(
                    (o - want).abs() <= 3e-6 * want,
                    "{level}: rsqrt({x}) = {o}, want {want}"
                );
            }
        }
    }
}
