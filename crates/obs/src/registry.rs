//! Name+label metric registry with Prometheus text rendering.
//!
//! Registration is rare (service startup, first touch of a label set)
//! and takes a mutex; the returned `Arc` handles are then recorded
//! into lock-free, so the hot path never sees the registry lock.
//! Rendering walks the registered families in registration order and
//! emits the [Prometheus text exposition format] — hand-rolled, like
//! `serve::wire`'s JSON.
//!
//! [Prometheus text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::sync::{Arc, Mutex};

use crate::metrics::{bucket_bounds_ns, Counter, Gauge, Histogram, BUCKETS};

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    metric: Metric,
}

/// Owns every registered metric; clones of the same `Registry` share
/// one namespace.
#[derive(Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register (or look up) a counter under `name` + `labels`.
    ///
    /// Registering the same name+labels twice returns the same handle;
    /// registering a name under two different metric kinds panics —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.get_or_insert(name, labels, help, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric '{name}' already registered as {}", other.kind()),
        }
    }

    /// Register (or look up) a gauge under `name` + `labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric '{name}' already registered as {}", other.kind()),
        }
    }

    /// Register (or look up) a histogram under `name` + `labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, labels, help, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric '{name}' already registered as {}", other.kind()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && label_eq(&e.labels, labels))
        {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            metric: metric.clone(),
        });
        metric
    }

    /// Render every registered metric in Prometheus text exposition
    /// format (`text/plain; version=0.0.4`). Families (same name,
    /// different labels) are grouped under one `# HELP`/`# TYPE` pair.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut out = String::with_capacity(entries.len() * 128);
        // All samples of a family must sit under one HELP/TYPE header,
        // regardless of interleaved registration order.
        let mut names: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if !names.contains(&e.name.as_str()) {
                names.push(&e.name);
            }
        }
        for name in names {
            let family: Vec<&Entry> = entries.iter().filter(|e| e.name == name).collect();
            let head = family[0];
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            push_escaped_help(&mut out, &head.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(head.metric.kind());
            out.push('\n');
            for e in family {
                Registry::render_entry(&mut out, e);
            }
        }
        out
    }

    fn render_entry(out: &mut String, e: &Entry) {
        match &e.metric {
            Metric::Counter(c) => {
                push_sample(out, &e.name, &e.labels, None, &format_u64(c.get()));
            }
            Metric::Gauge(g) => {
                push_sample(out, &e.name, &e.labels, None, &g.get().to_string());
            }
            Metric::Histogram(h) => {
                let snap = h.snapshot();
                let bounds = bucket_bounds_ns();
                let mut cum = 0u64;
                for (i, n) in snap.buckets.iter().enumerate() {
                    cum += n;
                    let le = if i < BUCKETS {
                        format_f64(bounds[i] as f64 / 1e9)
                    } else {
                        "+Inf".to_string()
                    };
                    push_sample_suffix(
                        out,
                        &e.name,
                        "_bucket",
                        &e.labels,
                        Some(("le", &le)),
                        &format_u64(cum),
                    );
                }
                push_sample_suffix(
                    out,
                    &e.name,
                    "_sum",
                    &e.labels,
                    None,
                    &format_f64(snap.sum_ns as f64 / 1e9),
                );
                push_sample_suffix(
                    out,
                    &e.name,
                    "_count",
                    &e.labels,
                    None,
                    &format_u64(snap.count),
                );
            }
        }
    }
}

fn label_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want.iter())
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

fn push_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    push_sample_suffix(out, name, "", labels, extra, value);
}

fn push_sample_suffix(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            push_escaped_label(out, v);
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            push_escaped_label(out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Label values escape backslash, double-quote and newline.
fn push_escaped_label(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// HELP text escapes backslash and newline (quotes are legal there).
fn push_escaped_help(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn format_u64(v: u64) -> String {
    v.to_string()
}

/// Shortest-roundtrip float formatting; Rust's `{}` for f64 already
/// emits the minimal digits, which Prometheus parses fine.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral seconds readable ("2" not "2.0" is also legal,
        // but emit the fraction to make the unit unambiguous).
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_a_handle() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("k", "v")], "");
        let b = r.counter("x_total", &[("k", "v")], "");
        a.inc();
        assert_eq!(b.get(), 1);
        // A different label set is a distinct series.
        let c = r.counter("x_total", &[("k", "w")], "");
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("x", &[], "");
        r.gauge("x", &[], "");
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let r = Registry::new();
        r.counter("mudock_requests_total", &[], "served").inc();
        r.gauge("mudock_connections_open", &[], "open now").set(3);
        let h = r.histogram(
            "mudock_job_stage_seconds",
            &[("stage", "dock")],
            "stage wall-clock",
        );
        h.record_ns(1_500_000); // 1.5 ms
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE mudock_requests_total counter"));
        assert!(text.contains("mudock_requests_total 1\n"));
        assert!(text.contains("# TYPE mudock_connections_open gauge"));
        assert!(text.contains("mudock_connections_open 3\n"));
        assert!(text.contains("# TYPE mudock_job_stage_seconds histogram"));
        assert!(text.contains("mudock_job_stage_seconds_bucket{stage=\"dock\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("mudock_job_stage_seconds_count{stage=\"dock\"} 1\n"));
        // Buckets are cumulative: the +Inf bucket equals the count.
        let inf: u64 = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert_eq!(inf, 1);
    }

    #[test]
    fn families_group_under_one_type_header() {
        let r = Registry::new();
        r.counter("y_total", &[("s", "a")], "y help").inc();
        r.counter("y_total", &[("s", "b")], "y help").add(2);
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE y_total counter").count(), 1);
        assert!(text.contains("y_total{s=\"a\"} 1\n"));
        assert!(text.contains("y_total{s=\"b\"} 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("z_total", &[("p", "a\"b\\c\nd")], "").inc();
        let text = r.render_prometheus();
        assert!(text.contains(r#"z_total{p="a\"b\\c\nd"} 1"#));
    }
}
