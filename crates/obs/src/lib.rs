//! Observability substrate for the mudock serve stack.
//!
//! Everything here is dependency-free (std only) and lock-cheap on the
//! hot path, in the same spirit as `serve::wire`'s hand-rolled JSON
//! codec: the docking loop and the network reactor record into plain
//! atomics, and the expensive work (quantile interpolation, Prometheus
//! text rendering, JSONL encoding) happens only at scrape time.
//!
//! The crate has four parts:
//!
//! - [`metrics`]: [`Counter`], [`Gauge`] and a fixed-boundary
//!   log-bucketed [`Histogram`] whose `record` path is a handful of
//!   relaxed atomic RMWs — no locks, no allocation.
//! - [`registry`]: a name+label [`Registry`] that owns metric handles
//!   and renders the whole set in Prometheus text exposition format.
//! - [`jobtrace`]: [`JobTrace`], the per-job stage clock — monotonic
//!   nanosecond stamps at enqueue/dequeue/grid/dock/sink/terminal,
//!   snapshotted into a [`StageTimings`] breakdown for `GET /jobs/{id}`.
//! - [`trace`]: [`TraceWriter`], a bounded JSONL trace ring (one line
//!   per span close) for offline replay — the future cache lab's input.
//!
//! Time is the crate's own monotonic clock ([`now_ns`]): nanoseconds
//! since the first call in the process, never zero, so `0` doubles as
//! the "not yet stamped" sentinel in atomic timestamp slots.
//!
//! ```
//! use mudock_obs::{Registry, now_ns};
//!
//! let reg = Registry::new();
//! let reqs = reg.counter("mudock_requests_total", &[], "requests served");
//! let lat = reg.histogram("mudock_request_seconds", &[], "request latency");
//! let t0 = now_ns();
//! reqs.inc();
//! lat.record_ns(now_ns() - t0);
//! let text = reg.render_prometheus();
//! assert!(text.contains("# TYPE mudock_requests_total counter"));
//! assert!(text.contains("mudock_request_seconds_bucket"));
//! ```

pub mod jobtrace;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use jobtrace::{GridSource, JobTrace, StageTimings};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use trace::{SpanRecord, TraceWriter};

use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide monotonic clock origin.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the first call in this process.
///
/// Always `>= 1`, so atomic timestamp fields can use `0` as their
/// "never stamped" sentinel. Saturates (after ~584 years) rather than
/// wrapping.
pub fn now_ns() -> u64 {
    let ns = origin().elapsed().as_nanos();
    (ns.min(u64::MAX as u128) as u64).max(1)
}

/// Wall-clock nanoseconds since the Unix epoch (for trace lines that
/// must be correlatable across processes). Falls back to `0` if the
/// system clock reads before the epoch.
pub fn unix_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic_and_nonzero() {
        let a = now_ns();
        let b = now_ns();
        assert!(a >= 1);
        assert!(b >= a);
    }
}
