//! Per-job stage clock: atomic monotonic timestamps and accumulators.
//!
//! One [`JobTrace`] rides along with each job (inside the serve
//! stack's shared job state) and is stamped from whichever thread
//! happens to be driving that stage — the submitting connection, the
//! executor, the sink writer. Stamps are [`crate::now_ns`] values in
//! plain relaxed atomics: writes are single-owner per stage, reads
//! (status endpoints) tolerate torn cross-field views because each
//! field is independently meaningful.
//!
//! `0` means "not yet stamped" ([`crate::now_ns`] never returns 0).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::now_ns;

/// How a job's grid set was obtained from the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridSource {
    /// Served from memory (includes joining another job's in-flight build).
    Hit,
    /// Built from scratch (AutoGrid run).
    Built,
    /// Reloaded bit-identically from the disk spill tier.
    Reloaded,
}

impl GridSource {
    pub fn name(self) -> &'static str {
        match self {
            GridSource::Hit => "hit",
            GridSource::Built => "built",
            GridSource::Reloaded => "reloaded",
        }
    }

    pub fn parse(s: &str) -> Option<GridSource> {
        match s {
            "hit" => Some(GridSource::Hit),
            "built" => Some(GridSource::Built),
            "reloaded" => Some(GridSource::Reloaded),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Option<GridSource> {
        match v {
            1 => Some(GridSource::Hit),
            2 => Some(GridSource::Built),
            3 => Some(GridSource::Reloaded),
            _ => None,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            GridSource::Hit => 1,
            GridSource::Built => 2,
            GridSource::Reloaded => 3,
        }
    }
}

/// Monotonic stage stamps and accumulators for one job's lifetime.
#[derive(Debug, Default)]
pub struct JobTrace {
    /// `now_ns` at queue admission.
    enqueued_ns: AtomicU64,
    /// `now_ns` when an executor won the shard arbitration and popped it.
    dequeued_ns: AtomicU64,
    /// Wall-clock spent acquiring the grid set (build, reload, or hit).
    grid_ns: AtomicU64,
    /// How the grid arrived (0 = not yet known).
    grid_source: AtomicU8,
    /// Accumulated wall-clock inside the docking pool, across chunks.
    dock_ns: AtomicU64,
    /// Chunks docked so far (the dock accumulator's sample count).
    dock_chunks: AtomicU64,
    /// Accumulated wall-clock flushing the sink / checkpoint, across chunks.
    sink_ns: AtomicU64,
    /// `now_ns` when the job reached a terminal state.
    finished_ns: AtomicU64,
}

impl JobTrace {
    pub fn new() -> JobTrace {
        JobTrace::default()
    }

    pub fn stamp_enqueued(&self) {
        self.enqueued_ns.store(now_ns(), Ordering::Relaxed);
    }

    /// Stamp dequeue; returns the queue wait in ns (None when the
    /// enqueue stamp is missing — a job driven outside the queue).
    pub fn stamp_dequeued(&self) -> Option<u64> {
        let now = now_ns();
        self.dequeued_ns.store(now, Ordering::Relaxed);
        match self.enqueued_ns.load(Ordering::Relaxed) {
            0 => None,
            t0 => Some(now.saturating_sub(t0)),
        }
    }

    pub fn record_grid(&self, ns: u64, source: GridSource) {
        self.grid_ns.store(ns, Ordering::Relaxed);
        self.grid_source.store(source.as_u8(), Ordering::Relaxed);
    }

    pub fn add_dock(&self, ns: u64) {
        self.dock_ns.fetch_add(ns, Ordering::Relaxed);
        self.dock_chunks.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_sink(&self, ns: u64) {
        self.sink_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Stamp the terminal state; returns total queue-to-terminal ns
    /// when the enqueue stamp exists.
    pub fn stamp_finished(&self) -> Option<u64> {
        let now = now_ns();
        self.finished_ns.store(now, Ordering::Relaxed);
        match self.enqueued_ns.load(Ordering::Relaxed) {
            0 => None,
            t0 => Some(now.saturating_sub(t0)),
        }
    }

    /// Point-in-time stage breakdown (all fields independently valid).
    pub fn snapshot(&self) -> StageTimings {
        let enq = self.enqueued_ns.load(Ordering::Relaxed);
        let deq = self.dequeued_ns.load(Ordering::Relaxed);
        let fin = self.finished_ns.load(Ordering::Relaxed);
        let grid = self.grid_ns.load(Ordering::Relaxed);
        let source = GridSource::from_u8(self.grid_source.load(Ordering::Relaxed));
        StageTimings {
            queue_wait_ns: (enq != 0 && deq != 0).then(|| deq.saturating_sub(enq)),
            grid_ns: source.map(|_| grid),
            grid_source: source,
            dock_ns: match self.dock_chunks.load(Ordering::Relaxed) {
                0 => None,
                _ => Some(self.dock_ns.load(Ordering::Relaxed)),
            },
            dock_chunks: self.dock_chunks.load(Ordering::Relaxed),
            sink_ns: match self.sink_ns.load(Ordering::Relaxed) {
                0 => None,
                ns => Some(ns),
            },
            total_ns: (enq != 0 && fin != 0).then(|| fin.saturating_sub(enq)),
        }
    }
}

/// A job's per-stage wall-clock breakdown, as reported by
/// `GET /jobs/{id}`. `None` = the stage has not happened (yet).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    pub queue_wait_ns: Option<u64>,
    pub grid_ns: Option<u64>,
    pub grid_source: Option<GridSource>,
    pub dock_ns: Option<u64>,
    pub dock_chunks: u64,
    pub sink_ns: Option<u64>,
    pub total_ns: Option<u64>,
}

impl StageTimings {
    /// True when nothing has been stamped at all (e.g. a status decoded
    /// from a peer that predates stage tracing).
    pub fn is_empty(&self) -> bool {
        *self == StageTimings::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_progress_and_snapshot() {
        let t = JobTrace::new();
        assert!(t.snapshot().is_empty());
        t.stamp_enqueued();
        let wait = t.stamp_dequeued().expect("enqueued was stamped");
        t.record_grid(500, GridSource::Built);
        t.add_dock(1_000);
        t.add_dock(2_000);
        t.add_sink(300);
        let total = t.stamp_finished().expect("enqueued was stamped");
        let s = t.snapshot();
        assert_eq!(s.queue_wait_ns, Some(wait));
        assert_eq!(s.grid_ns, Some(500));
        assert_eq!(s.grid_source, Some(GridSource::Built));
        assert_eq!(s.dock_ns, Some(3_000));
        assert_eq!(s.dock_chunks, 2);
        assert_eq!(s.sink_ns, Some(300));
        assert_eq!(s.total_ns, Some(total));
        assert!(total >= wait);
    }

    #[test]
    fn unqueued_job_reports_no_wait() {
        let t = JobTrace::new();
        assert_eq!(t.stamp_dequeued(), None);
        assert_eq!(t.snapshot().queue_wait_ns, None);
    }

    #[test]
    fn grid_source_round_trips_names() {
        for s in [GridSource::Hit, GridSource::Built, GridSource::Reloaded] {
            assert_eq!(GridSource::parse(s.name()), Some(s));
        }
        assert_eq!(GridSource::parse("nope"), None);
    }
}
