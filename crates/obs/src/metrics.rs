//! Lock-cheap metric primitives: counter, gauge, log-bucketed histogram.
//!
//! Every `record`/`inc` is a handful of relaxed atomic RMWs — safe to
//! call from the docking inner loop or the reactor's event loop without
//! perturbing the measurement. Cross-metric consistency is explicitly
//! *not* promised here (each atomic is independent); callers that need
//! an invariant-preserving multi-metric snapshot order their loads, as
//! `serve::net`'s connection gauges do.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (open connections, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of finite buckets; index [`BUCKETS`] is the +Inf overflow.
pub const BUCKETS: usize = 40;

/// Smallest bucket boundary: 1 µs, in nanoseconds.
const FIRST_BOUND_NS: u64 = 1_000;

/// Fixed upper bounds, nanoseconds, doubling per bucket:
/// 1 µs, 2 µs, 4 µs, … — the top finite bound is 1 µs · 2³⁹ ≈ 550 s.
/// Every histogram in the process shares these boundaries, which is
/// what lets the bench and the server agree on quantiles exactly.
pub fn bucket_bounds_ns() -> &'static [u64; BUCKETS] {
    static BOUNDS: std::sync::OnceLock<[u64; BUCKETS]> = std::sync::OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b = [0u64; BUCKETS];
        let mut v = FIRST_BOUND_NS;
        for slot in b.iter_mut() {
            *slot = v;
            v = v.saturating_mul(2);
        }
        b
    })
}

/// Index of the bucket whose upper bound is the smallest `>= ns`
/// (i.e. Prometheus `le` semantics); [`BUCKETS`] for the overflow.
#[inline]
fn bucket_index(ns: u64) -> usize {
    // bounds[i] = FIRST · 2^i, so we need the smallest i with
    // 2^i >= ns / FIRST — a leading-zeros computation, no search.
    let q = ns.div_ceil(FIRST_BOUND_NS);
    if q <= 1 {
        return 0;
    }
    let i = (u64::BITS - (q - 1).leading_zeros()) as usize;
    i.min(BUCKETS)
}

/// Fixed-boundary log-bucketed latency histogram.
///
/// `record_ns` is wait-free: one bucket increment plus count/sum adds
/// and a CAS-loop max. Snapshots read the buckets relaxed; totals are
/// deterministic (every recorded value lands in exactly one bucket and
/// in `count`/`sum` exactly once) even under concurrent recording,
/// though a snapshot racing a record may transiently see `count`
/// ahead of the bucket sum by in-flight records.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation, in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] observation.
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record an observation given in (possibly fractional)
    /// milliseconds — the bench harness's native unit.
    #[inline]
    pub fn record_ms_f64(&self, ms: f64) {
        if ms.is_finite() && ms >= 0.0 {
            self.record_ns((ms * 1e6).min(u64::MAX as f64) as u64);
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS + 1];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        // Derive totals from the buckets themselves so the snapshot is
        // self-consistent (count == Σ buckets) even when records are
        // landing concurrently.
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram state with quantile interpolation.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS + 1],
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`), in nanoseconds.
    ///
    /// Linear interpolation inside the covering bucket, clamped to the
    /// observed maximum (so the overflow bucket and the top of a
    /// sparsely filled bucket never report a value larger than any
    /// observation). Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: the smallest rank
        // covering fraction q of the population.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let bounds = bucket_bounds_ns();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let lower = if i == 0 { 0 } else { bounds[i - 1] };
                let upper = if i < BUCKETS { bounds[i] } else { self.max_ns };
                let within = (rank - cum) as f64 / n as f64;
                let est = lower as f64 + (upper.saturating_sub(lower)) as f64 * within;
                return (est as u64).min(self.max_ns);
            }
            cum += n;
        }
        self.max_ns
    }

    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Mean observation, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_le_semantics() {
        // Exactly on a bound lands in that bucket; one past it moves up.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1_000), 0);
        assert_eq!(bucket_index(1_001), 1);
        assert_eq!(bucket_index(2_000), 1);
        assert_eq!(bucket_index(2_001), 2);
        assert_eq!(bucket_index(4_000), 2);
        // Cross-check the closed form against the bounds table.
        let bounds = bucket_bounds_ns();
        for (i, &b) in bounds.iter().enumerate() {
            assert_eq!(bucket_index(b), i, "bound {b} ns");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_index(b + 1), i + 1, "bound {b}+1 ns");
            }
        }
        // Past the top finite bound: the overflow bucket.
        assert_eq!(bucket_index(bounds[BUCKETS - 1] + 1), BUCKETS);
        assert_eq!(bucket_index(u64::MAX), BUCKETS);
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        let h = Histogram::new();
        // 100 observations spread uniformly in the (1 ms, 2 ms] bucket.
        for i in 0..100u64 {
            h.record_ns(1_024_000 + i * 9_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let bounds = bucket_bounds_ns();
        let (lower, upper) = (bounds[10], bounds[11]); // 1.024 ms, 2.048 ms
        assert_eq!(bucket_index(1_024_000 + 99 * 9_000), 11);
        // p50 interpolates to the middle of the bucket, p99 near its top.
        let p50 = s.p50_ns();
        let mid = lower + (upper - lower) / 2;
        assert!(
            (p50 as i64 - mid as i64).unsigned_abs() <= (upper - lower) / 20,
            "p50 {p50} not near bucket midpoint {mid}"
        );
        let p99 = s.p99_ns();
        assert!(p99 > p50);
        assert!(
            p99 <= s.max_ns,
            "p99 {p99} exceeds observed max {}",
            s.max_ns
        );
        // p100 is exactly the observed max — never the bucket bound.
        assert_eq!(s.quantile_ns(1.0), s.max_ns);
    }

    #[test]
    fn quantile_exact_on_single_valued_histogram() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record_ns(5_000_000); // 5 ms
        }
        let s = h.snapshot();
        // Every quantile is clamped to the (single) observed value.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert!(s.quantile_ns(q) <= 5_000_000);
        }
        assert_eq!(s.max_ns, 5_000_000);
        assert_eq!(s.mean_ns(), 5_000_000);
    }

    #[test]
    fn saturates_at_the_overflow_bucket() {
        let h = Histogram::new();
        let bounds = bucket_bounds_ns();
        let huge = bounds[BUCKETS - 1].saturating_mul(8);
        h.record_ns(huge);
        h.record_ns(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS], 2, "both land in +Inf");
        assert_eq!(s.count, 2);
        assert_eq!(s.max_ns, u64::MAX);
        // Quantiles in the overflow bucket report the observed max, not
        // an invented bound.
        assert_eq!(s.quantile_ns(1.0), u64::MAX);
        // The interpolated median is clamped into the observed range.
        assert!(s.p50_ns() >= bounds[BUCKETS - 1]);
    }

    #[test]
    fn concurrent_recording_keeps_totals_deterministic() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Deterministic per-thread pattern spanning many buckets.
                        h.record_ns(500 + (t * PER_THREAD + i) * 137);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        let expected = THREADS * PER_THREAD;
        assert_eq!(s.count, expected);
        assert_eq!(s.buckets.iter().sum::<u64>(), expected);
        // The sum is the exact arithmetic series regardless of interleaving.
        let n = THREADS * PER_THREAD;
        let expected_sum: u64 = 500 * n + 137 * (n * (n - 1) / 2);
        assert_eq!(s.sum_ns, expected_sum);
        assert_eq!(s.max_ns, 500 + (n - 1) * 137);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn record_ms_f64_converts_and_rejects_garbage() {
        let h = Histogram::new();
        h.record_ms_f64(1.5); // 1.5 ms = 1_500_000 ns
        h.record_ms_f64(f64::NAN);
        h.record_ms_f64(-3.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, 1_500_000);
    }
}
