//! Bounded JSONL trace ring: one line per span close.
//!
//! The writer appends every closed span to a file as a single JSON
//! object per line and keeps the last `capacity` lines in memory.
//! When the file grows past `2 × capacity` lines it is compacted in
//! place (atomically rewritten from the in-memory ring), so the file
//! on disk is bounded regardless of how long the service runs — a
//! crash loses at most the lines of the current compaction window.
//!
//! Line schema (all fields always present, in this order):
//!
//! ```json
//! {"ts_ns":1723108000123456789,"job":42,"stage":"dock","dur_ns":1500000,"attrs":{"chunk":"3"}}
//! ```
//!
//! - `ts_ns`  — wall-clock Unix-epoch nanoseconds at span close
//! - `job`    — job id, or `null` for service-level spans (requests,
//!   reactor iterations are *not* traced — only job stages close spans)
//! - `stage`  — `queue_wait`, `grid`, `dock`, `sink` or `total`
//! - `dur_ns` — span duration, monotonic nanoseconds
//! - `attrs`  — flat string→string map of stage-specific detail
//!   (e.g. `{"source":"reloaded"}` on `grid` spans)

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::unix_ns;

/// A span about to be written; borrows its strings from the caller.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord<'a> {
    /// Job id, or `None` for service-level spans.
    pub job: Option<u64>,
    /// Stage name (`queue_wait`, `grid`, `dock`, `sink`, `total`).
    pub stage: &'a str,
    /// Span duration, monotonic nanoseconds.
    pub dur_ns: u64,
    /// Stage-specific detail, flat key/value pairs.
    pub attrs: &'a [(&'a str, &'a str)],
}

struct Inner {
    file: File,
    /// Last `capacity` lines, newest at the back.
    ring: VecDeque<String>,
    /// Lines currently in the on-disk file.
    file_lines: usize,
}

/// Thread-safe bounded JSONL span writer.
pub struct TraceWriter {
    path: PathBuf,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl TraceWriter {
    /// Default ring capacity (lines) when the caller does not choose.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Create (truncating any previous file at `path`).
    pub fn create(path: &Path, capacity: usize) -> io::Result<TraceWriter> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(TraceWriter {
            path: path.to_path_buf(),
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                file,
                ring: VecDeque::new(),
                file_lines: 0,
            }),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Close a span: encode, ring-buffer, append, maybe compact.
    pub fn emit(&self, span: &SpanRecord<'_>) {
        let line = encode(span);
        let mut inner = self.inner.lock().unwrap();
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(line.clone());
        // Append; trace IO must never take the service down, so errors
        // are swallowed after the writer was successfully created.
        if writeln!(inner.file, "{line}").is_ok() {
            inner.file_lines += 1;
        }
        if inner.file_lines > self.capacity * 2 {
            self.compact(&mut inner);
        }
    }

    /// Rewrite the file from the ring via a temp file + atomic rename,
    /// the same crash-safe idiom as the grid spill tier.
    fn compact(&self, inner: &mut Inner) {
        let tmp = self.path.with_extension("jsonl.tmp");
        let rewritten = (|| -> io::Result<File> {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            for line in &inner.ring {
                writeln!(f, "{line}")?;
            }
            f.sync_all()?;
            std::fs::rename(&tmp, &self.path)?;
            // Reopen in append mode at the new end.
            OpenOptions::new().append(true).open(&self.path)
        })();
        if let Ok(f) = rewritten {
            inner.file = f;
            inner.file_lines = inner.ring.len();
        } else {
            std::fs::remove_file(&tmp).ok();
            // Keep appending to the old handle; try compacting again at
            // the next threshold crossing.
            inner.file_lines = self.capacity * 2;
        }
    }

    /// The most recent lines (newest last) — test/introspection hook.
    pub fn recent(&self) -> Vec<String> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }
}

fn encode(span: &SpanRecord<'_>) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"ts_ns\":");
    s.push_str(&unix_ns().to_string());
    s.push_str(",\"job\":");
    match span.job {
        Some(id) => s.push_str(&id.to_string()),
        None => s.push_str("null"),
    }
    s.push_str(",\"stage\":\"");
    push_json_escaped(&mut s, span.stage);
    s.push_str("\",\"dur_ns\":");
    s.push_str(&span.dur_ns.to_string());
    s.push_str(",\"attrs\":{");
    for (i, (k, v)) in span.attrs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        push_json_escaped(&mut s, k);
        s.push_str("\":\"");
        push_json_escaped(&mut s, v);
        s.push('"');
    }
    s.push_str("}}");
    s
}

fn push_json_escaped(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "mudock-obs-trace-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn emits_one_json_object_per_line() {
        let path = tmp_path("emit");
        let w = TraceWriter::create(&path, 16).unwrap();
        w.emit(&SpanRecord {
            job: Some(7),
            stage: "dock",
            dur_ns: 1_500_000,
            attrs: &[("chunk", "3")],
        });
        w.emit(&SpanRecord {
            job: None,
            stage: "grid",
            dur_ns: 9,
            attrs: &[("source", "reloaded")],
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"job\":7"));
        assert!(lines[0].contains("\"stage\":\"dock\""));
        assert!(lines[0].contains("\"dur_ns\":1500000"));
        assert!(lines[0].contains("\"attrs\":{\"chunk\":\"3\"}"));
        assert!(lines[1].contains("\"job\":null"));
        assert!(lines[1].contains("\"source\":\"reloaded\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_stays_bounded_by_compaction() {
        let path = tmp_path("bound");
        let cap = 8;
        let w = TraceWriter::create(&path, cap).unwrap();
        for i in 0..100u64 {
            w.emit(&SpanRecord {
                job: Some(i),
                stage: "total",
                dur_ns: i,
                attrs: &[],
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let n = text.lines().count();
        assert!(n <= cap * 2, "file holds {n} lines, cap {cap}");
        // The newest span is always present.
        assert!(text.lines().last().unwrap().contains("\"job\":99"));
        // And the in-memory ring holds exactly the last `cap`.
        let recent = w.recent();
        assert_eq!(recent.len(), cap);
        assert!(recent.last().unwrap().contains("\"job\":99"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn escapes_hostile_attr_values() {
        let path = tmp_path("escape");
        let w = TraceWriter::create(&path, 4).unwrap();
        w.emit(&SpanRecord {
            job: None,
            stage: "total",
            dur_ns: 0,
            attrs: &[("name", "a\"b\\c\nd")],
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().count(),
            1,
            "newline in value must stay escaped"
        );
        assert!(text.contains(r#"a\"b\\c\nd"#));
        std::fs::remove_file(&path).ok();
    }
}
