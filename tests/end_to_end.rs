//! End-to-end pipeline: generate → serialize → parse → prepare → grid →
//! dock, across every backend available on this host.

use mudock::core::{Backend, DockParams, DockingEngine, GaParams, LigandPrep};
use mudock::grids::{GridBuilder, GridDims};
use mudock::mol::Vec3;
use mudock::simd::SimdLevel;

fn params(backend: Backend) -> DockParams {
    DockParams {
        ga: GaParams {
            population: 24,
            generations: 18,
            ..Default::default()
        },
        seed: 77,
        backend,
        search_radius: Some(4.5),
        local_search: None,
    }
}

#[test]
fn full_pipeline_through_pdbqt_roundtrip() {
    // Generate a complex, push the ligand through its on-disk format.
    let (receptor, ligand) = mudock::molio::complex_1a30_like();
    let text = mudock::molio::write(&ligand);
    let ligand2 = mudock::molio::parse(&text).expect("roundtrip parse");
    assert_eq!(ligand.atoms.len(), ligand2.atoms.len());
    assert_eq!(
        ligand.num_rotatable_bonds(),
        ligand2.num_rotatable_bonds(),
        "rotatable bonds survive serialization"
    );

    let mut types: Vec<mudock::ff::AtomType> = ligand2.atoms.iter().map(|a| a.ty).collect();
    types.sort_unstable();
    types.dedup();
    let dims = GridDims::centered(Vec3::ZERO, 10.0, 0.65);
    let maps = GridBuilder::new(&receptor, dims)
        .with_types(&types)
        .build_simd(SimdLevel::detect());
    let engine = DockingEngine::new(&maps).unwrap();
    let prep = LigandPrep::new(ligand2).unwrap();

    let report = engine
        .dock(&prep, &params(Backend::Explicit(SimdLevel::detect())))
        .unwrap();
    assert!(report.best_score.is_finite());
    assert!(
        report.history.last().unwrap() < &report.history[0],
        "GA improved from {} to {}",
        report.history[0],
        report.history.last().unwrap()
    );
}

#[test]
fn every_backend_docks_and_improves() {
    let (receptor, ligand) = mudock::molio::complex_1a30_like();
    let mut types: Vec<mudock::ff::AtomType> = ligand.atoms.iter().map(|a| a.ty).collect();
    types.sort_unstable();
    types.dedup();
    let dims = GridDims::centered(Vec3::ZERO, 10.0, 0.65);
    let maps = GridBuilder::new(&receptor, dims)
        .with_types(&types)
        .build_simd(SimdLevel::detect());
    let engine = DockingEngine::new(&maps).unwrap();
    let prep = LigandPrep::new(ligand).unwrap();

    for backend in Backend::available() {
        let report = engine.dock(&prep, &params(backend)).unwrap();
        assert!(
            report.best_score.is_finite(),
            "{backend}: non-finite best score"
        );
        let first = report.history[0];
        let last = *report.history.last().unwrap();
        assert!(
            last <= first,
            "{backend}: no improvement ({first} → {last})"
        );
        assert_eq!(report.evaluations, 24 * 18, "{backend}");
    }
}

#[test]
fn screening_pipeline_with_pool() {
    let receptor = mudock::molio::synthetic_receptor(5, 200, 9.0);
    let ligands = mudock::molio::mediate_like_set(9, 8);
    let dims = GridDims::centered(Vec3::ZERO, 10.5, 0.7);
    let maps = GridBuilder::new(&receptor, dims).build_simd(SimdLevel::detect());
    let summary = mudock::core::screen(
        &maps,
        &ligands,
        &params(Backend::Explicit(SimdLevel::detect())),
        2,
    );
    assert_eq!(summary.results.len(), 8);
    assert!(summary.results.iter().all(|r| r.best_score.is_some()));
    let top = summary.top_k(3);
    assert_eq!(top.len(), 3);
    // Ranking is by score ascending.
    let s = |i: usize| summary.results[top[i]].best_score.unwrap();
    assert!(s(0) <= s(1) && s(1) <= s(2));
}

#[test]
fn dock_rejects_ligand_with_unbuilt_maps() {
    let (receptor, ligand) = mudock::molio::complex_1a30_like();
    // Build only the carbon map; the ligand needs more.
    let dims = GridDims::centered(Vec3::ZERO, 8.0, 0.8);
    let maps = GridBuilder::new(&receptor, dims)
        .with_types(&[mudock::ff::AtomType::C])
        .build_scalar();
    let engine = DockingEngine::new(&maps).unwrap();
    let prep = LigandPrep::new(ligand).unwrap();
    assert!(engine.dock(&prep, &params(Backend::AutoVec)).is_err());
}
