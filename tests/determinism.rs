//! Reproducibility guarantees: identical seeds produce identical results,
//! regardless of scheduling.

use mudock::core::{screen, Backend, DockParams, DockingEngine, GaParams, LigandPrep};
use mudock::grids::{GridBuilder, GridDims};
use mudock::mol::Vec3;
use mudock::simd::SimdLevel;

fn setup() -> (mudock::grids::GridSet, LigandPrep) {
    let (receptor, ligand) = mudock::molio::complex_1a30_like();
    let mut types: Vec<mudock::ff::AtomType> = ligand.atoms.iter().map(|a| a.ty).collect();
    types.sort_unstable();
    types.dedup();
    let dims = GridDims::centered(Vec3::ZERO, 10.0, 0.7);
    let maps = GridBuilder::new(&receptor, dims)
        .with_types(&types)
        .build_simd(SimdLevel::detect());
    (maps, LigandPrep::new(ligand).unwrap())
}

fn params(seed: u64) -> DockParams {
    DockParams {
        ga: GaParams {
            population: 20,
            generations: 12,
            ..Default::default()
        },
        seed,
        backend: Backend::Explicit(SimdLevel::detect()),
        search_radius: Some(4.0),
        local_search: None,
    }
}

#[test]
fn docking_is_bit_reproducible() {
    let (maps, prep) = setup();
    let engine = DockingEngine::new(&maps).unwrap();
    let a = engine.dock(&prep, &params(123)).unwrap();
    let b = engine.dock(&prep, &params(123)).unwrap();
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    assert_eq!(a.best_genotype, b.best_genotype);
    assert_eq!(a.history, b.history);
}

#[test]
fn different_seeds_explore_differently() {
    let (maps, prep) = setup();
    let engine = DockingEngine::new(&maps).unwrap();
    let a = engine.dock(&prep, &params(1)).unwrap();
    let b = engine.dock(&prep, &params(2)).unwrap();
    assert_ne!(
        a.best_genotype, b.best_genotype,
        "distinct seeds must explore distinct trajectories"
    );
}

#[test]
fn grid_builds_are_deterministic() {
    let receptor = mudock::molio::synthetic_receptor(4, 150, 8.5);
    let dims = GridDims::centered(Vec3::ZERO, 8.0, 0.75);
    let a = GridBuilder::new(&receptor, dims)
        .with_types(&[mudock::ff::AtomType::C])
        .build_simd(SimdLevel::detect());
    let b = GridBuilder::new(&receptor, dims)
        .with_types(&[mudock::ff::AtomType::C])
        .build_simd(SimdLevel::detect());
    assert_eq!(a.data.len(), b.data.len());
    for (x, y) in a.data.iter().zip(&b.data) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn screening_results_independent_of_thread_count() {
    let receptor = mudock::molio::synthetic_receptor(11, 180, 9.0);
    let ligands = mudock::molio::mediate_like_set(3, 6);
    let dims = GridDims::centered(Vec3::ZERO, 10.0, 0.75);
    let maps = GridBuilder::new(&receptor, dims).build_simd(SimdLevel::detect());
    let p = params(55);
    let one = screen(&maps, &ligands, &p, 1);
    let four = screen(&maps, &ligands, &p, 4);
    for (a, b) in one.results.iter().zip(&four.results) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.best_score.map(f32::to_bits),
            b.best_score.map(f32::to_bits),
            "ligand {} differs across thread counts",
            a.name
        );
    }
}

#[test]
fn dataset_generators_are_stable_across_calls() {
    // The named complex must be the same molecule in every process run
    // (documented fixture, like a checked-in PDB file).
    let (r1, l1) = mudock::molio::complex_1a30_like();
    let (r2, l2) = mudock::molio::complex_1a30_like();
    assert_eq!(r1.atoms.len(), r2.atoms.len());
    for (a, b) in l1.atoms.iter().zip(&l2.atoms) {
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.charge.to_bits(), b.charge.to_bits());
    }
}
