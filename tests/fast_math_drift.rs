//! Fast-math drift check — the reproduction's version of the paper's
//! validation: "we compared docking scores from muDock with and without
//! -ffast-math on a subset of ligands, and the mean absolute difference
//! in score was below 0.0002 %" (Section VII-b).
//!
//! Here the `Reference` backend plays the role of the strict build (libm
//! math, no FMA contraction) and the `AutoVec`/`Explicit` backends the
//! fast-math builds (polynomial math, fused operations, reordered
//! reductions). The acceptance bound is looser than the paper's because
//! the comparison crosses *implementations*, not just compiler flags —
//! but it must stay far below anything that could reorder docking
//! rankings.

use mudock::core::{Backend, DockingEngine, Genotype, LigandPrep};
use mudock::grids::{GridBuilder, GridDims};
use mudock::mol::{ConformSoA, Vec3};
use mudock::simd::SimdLevel;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fast_math_score_drift_is_negligible() {
    let (receptor, ligand) = mudock::molio::complex_1a30_like();
    let mut types: Vec<mudock::ff::AtomType> = ligand.atoms.iter().map(|a| a.ty).collect();
    types.sort_unstable();
    types.dedup();
    let dims = GridDims::centered(Vec3::ZERO, 10.5, 0.6);
    let maps = GridBuilder::new(&receptor, dims)
        .with_types(&types)
        .build_simd(SimdLevel::detect());
    let engine = DockingEngine::new(&maps).unwrap();
    let prep = LigandPrep::new(ligand).unwrap();
    let mut scratch = ConformSoA::with_capacity(prep.base.n);

    let mut rng = StdRng::seed_from_u64(0xfa57);
    let poses: Vec<Genotype> = (0..200)
        .map(|_| Genotype::random(&mut rng, prep.n_torsions(), Vec3::ZERO, 5.0))
        .collect();

    for backend in Backend::available() {
        if backend == Backend::Reference {
            continue;
        }
        let mut mean_rel = 0.0f64;
        let mut worst_rel = 0.0f64;
        for g in &poses {
            let strict = engine.score(&prep, g, &mut scratch, Backend::Reference) as f64;
            let fast = engine.score(&prep, g, &mut scratch, backend) as f64;
            let rel = ((fast - strict) / strict.abs().max(1.0)).abs();
            mean_rel += rel;
            worst_rel = worst_rel.max(rel);
        }
        mean_rel /= poses.len() as f64;
        // Mean drift well under 0.1 %, no single pose off by > 1 %.
        assert!(
            mean_rel < 1e-3,
            "{backend}: mean relative drift {mean_rel:.2e}"
        );
        assert!(
            worst_rel < 1e-2,
            "{backend}: worst relative drift {worst_rel:.2e}"
        );
    }
}

#[test]
fn fast_math_preserves_pose_ranking() {
    // What actually matters for docking: the relative order of poses.
    let (receptor, ligand) = mudock::molio::complex_1a30_like();
    let mut types: Vec<mudock::ff::AtomType> = ligand.atoms.iter().map(|a| a.ty).collect();
    types.sort_unstable();
    types.dedup();
    let dims = GridDims::centered(Vec3::ZERO, 10.5, 0.6);
    let maps = GridBuilder::new(&receptor, dims)
        .with_types(&types)
        .build_simd(SimdLevel::detect());
    let engine = DockingEngine::new(&maps).unwrap();
    let prep = LigandPrep::new(ligand).unwrap();
    let mut scratch = ConformSoA::with_capacity(prep.base.n);

    let mut rng = StdRng::seed_from_u64(0x0bde);
    let poses: Vec<Genotype> = (0..60)
        .map(|_| Genotype::random(&mut rng, prep.n_torsions(), Vec3::ZERO, 5.0))
        .collect();

    let mut rank = |backend: Backend| -> Vec<usize> {
        let scores: Vec<f32> = poses
            .iter()
            .map(|g| engine.score(&prep, g, &mut scratch, backend))
            .collect();
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
        idx
    };

    let strict_top5 = &rank(Backend::Reference)[..5];
    let fast_top5 = &rank(Backend::Explicit(SimdLevel::detect()))[..5];
    // The top-5 sets agree (order within may shuffle on near-ties).
    let mut a: Vec<usize> = strict_top5.to_vec();
    let mut b: Vec<usize> = fast_top5.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "top-5 pose set changed under fast math");
}
