//! Property-based tests on the core data structures and invariants
//! (deliverable (c) of the reproduction): quaternion algebra, grid
//! interpolation bounds, topology exclusions, vector math accuracy, and
//! the work-stealing pool.

use mudock::mol::{Quat, Topology, Vec3};
use proptest::prelude::*;

fn unit_quat() -> impl Strategy<Value = Quat> {
    (
        -1.0f32..1.0,
        -1.0f32..1.0,
        -1.0f32..1.0,
        0.01f32..std::f32::consts::PI,
    )
        .prop_map(|(x, y, z, angle)| Quat::from_axis_angle(Vec3::new(x, y, z + 1.5), angle))
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (-50.0f32..50.0, -50.0f32..50.0, -50.0f32..50.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn quaternion_rotation_is_an_isometry(q in unit_quat(), a in vec3(), b in vec3()) {
        let da = q.rotate(a).distance(q.rotate(b));
        let db = a.distance(b);
        prop_assert!((da - db).abs() < 1e-3 * db.max(1.0));
    }

    #[test]
    fn quaternion_conjugate_is_inverse(q in unit_quat(), v in vec3()) {
        let back = q.conj().rotate(q.rotate(v));
        prop_assert!((back - v).norm() < 1e-3 * v.norm().max(1.0));
    }

    #[test]
    fn quaternion_composition_associates_with_application(
        q1 in unit_quat(), q2 in unit_quat(), v in vec3()
    ) {
        let seq = q2.rotate(q1.rotate(v));
        let comp = q2.mul(q1).rotate(v);
        prop_assert!((seq - comp).norm() < 2e-3 * v.norm().max(1.0));
    }

    #[test]
    fn shoemake_quaternions_are_unit(u1 in 0.0f32..1.0, u2 in 0.0f32..1.0, u3 in 0.0f32..1.0) {
        let q = Quat::from_uniforms(u1, u2, u3);
        prop_assert!((q.norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn vector_exp_accuracy(x in -80.0f32..80.0) {
        use mudock::simd::{math, Scalar};
        let got = math::exp(Scalar::new(), x);
        let want = (x as f64).exp();
        let rel = ((got as f64 - want) / want).abs();
        prop_assert!(rel < 2e-6, "exp({x}) rel err {rel}");
    }

    #[test]
    fn vector_log_accuracy(x in 1e-3f32..1e6) {
        use mudock::simd::{math, Scalar};
        let got = math::log(Scalar::new(), x);
        let want = (x as f64).ln();
        prop_assert!((got as f64 - want).abs() < 2e-6 * want.abs().max(1.0));
    }

    #[test]
    fn pool_matches_sequential_map(items in prop::collection::vec(0u64..1_000_000, 0..200),
                                   threads in 1usize..5) {
        let parallel = mudock::pool::parallel_map(&items, threads, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x.wrapping_mul(31).wrapping_add(i as u64)).collect();
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn synthetic_ligands_always_valid(seed in 0u64..500, heavy in 5usize..45, tors in 0usize..10) {
        let m = mudock::molio::synthetic_ligand(
            seed,
            mudock::molio::LigandSpec { heavy_atoms: heavy, torsions: tors },
        );
        prop_assert!(m.validate().is_ok());
        prop_assert!(m.num_rotatable_bonds() <= tors);
        // Every marked torsion decomposes into a valid moving fragment.
        let topo = Topology::build(&m);
        prop_assert_eq!(topo.torsions.len(), m.num_rotatable_bonds());
        for t in &topo.torsions {
            prop_assert!(!t.moving.is_empty());
            prop_assert!(!t.moving.contains(&t.a));
            prop_assert!(!t.moving.contains(&t.b));
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // Floyd-Warshall over an n*n matrix
    fn topology_pairs_respect_exclusions(seed in 0u64..300, heavy in 6usize..30) {
        let m = mudock::molio::synthetic_ligand(
            seed,
            mudock::molio::LigandSpec { heavy_atoms: heavy, torsions: 3 },
        );
        let topo = Topology::build(&m);
        // Reconstruct graph distances with Floyd-Warshall (independent of
        // the BFS in Topology) and verify the exclusion rule.
        let n = m.atoms.len();
        let inf = u32::MAX / 2;
        let mut d = vec![vec![inf; n]; n];
        for i in 0..n { d[i][i] = 0; }
        for b in &m.bonds {
            d[b.i as usize][b.j as usize] = 1;
            d[b.j as usize][b.i as usize] = 1;
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = d[i][k].saturating_add(d[k][j]);
                    if via < d[i][j] { d[i][j] = via; }
                }
            }
        }
        use std::collections::HashSet;
        let pairs: HashSet<(u32, u32)> = topo.pairs.iter().copied().collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let in_list = pairs.contains(&(i as u32, j as u32));
                let excluded = d[i][j] <= 3;
                prop_assert_eq!(in_list, !excluded, "pair ({}, {}) distance {}", i, j, d[i][j]);
            }
        }
    }

    /// `ScreenSummary::top_k` (the streaming O(k) accumulator) must match
    /// the obvious reference: stable-sort every scored ligand and
    /// truncate. Scores are quantized to force plenty of exact ties, and
    /// ties must rank by batch index (the stable sort's order).
    #[test]
    fn screen_summary_top_k_matches_sort_and_truncate(
        cells in prop::collection::vec((0u32..6, 0u32..5), 0..30),
        k in 0usize..12,
    ) {
        use mudock::core::{KernelStats, ScreenResult, ScreenSummary};

        let summary = ScreenSummary {
            results: cells
                .iter()
                .enumerate()
                .map(|(i, &(q, tag))| ScreenResult {
                    name: format!("lig{i}"),
                    // tag 0 → a failed ligand (no score); quantized
                    // scores (multiples of 0.5) collide constantly.
                    best_score: (tag != 0).then_some(q as f32 * 0.5 - 1.5),
                    evaluations: 0,
                    stats: KernelStats::default(),
                })
                .collect(),
            elapsed: std::time::Duration::from_millis(1),
            threads: 1,
            throughput: 0.0,
        };

        // Reference: full stable sort by score, failures dropped,
        // truncated to k. A stable sort on (score only) preserves batch
        // order among equal scores — exactly the documented tie rule.
        let mut reference: Vec<(f32, usize)> = summary
            .results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.best_score.map(|s| (s, i)))
            .collect();
        reference.sort_by(|a, b| a.0.total_cmp(&b.0));
        reference.truncate(k);
        let want: Vec<usize> = reference.into_iter().map(|(_, i)| i).collect();

        prop_assert_eq!(summary.top_k(k), want);
    }
}

#[test]
fn grid_interpolation_is_bounded_by_map_extremes() {
    use mudock::grids::{trilinear, GridDims};
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let _ = |r: &mut StdRng| -> f32 { RngExt::random(r) }; // keep both traits used
    let dims = GridDims {
        npts: [9, 9, 9],
        spacing: 0.5,
        origin: Vec3::ZERO,
    };
    let mut rng = StdRng::seed_from_u64(99);
    let map: Vec<f32> = (0..dims.total())
        .map(|_| rng.random::<f32>() * 100.0 - 50.0)
        .collect();
    let lo = map.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = map.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    for _ in 0..2000 {
        let p = Vec3::new(
            rng.random::<f32>() * 8.0 - 2.0,
            rng.random::<f32>() * 8.0 - 2.0,
            rng.random::<f32>() * 8.0 - 2.0,
        );
        let v = trilinear(&map, &dims, p);
        assert!(
            v >= lo - 1e-3 && v <= hi + 1e-3,
            "interpolant escaped [{lo}, {hi}]: {v}"
        );
    }
}

#[test]
fn cache_sim_lru_and_inclusion_invariants() {
    use mudock::archsim::Cache;
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(31);
    let mut c = Cache::new(8 * 1024, 4, 64);
    let mut accesses = 0u64;
    for _ in 0..20_000 {
        let addr: u64 = (rng.random_range(0..1024u64)) * 64;
        c.access(addr);
        accesses += 1;
        // Immediate re-access is always a hit (the line was just filled).
        assert!(c.access(addr), "immediate re-access must hit");
        accesses += 1;
    }
    assert_eq!(c.accesses, accesses);
    assert!(
        c.misses <= accesses / 2,
        "at most the first of each pair can miss"
    );
}
