//! Property-based equivalence of the SIMD kernels against their scalar
//! references, over randomized molecules and poses — the correctness
//! backbone of the whole explicit-vectorization arm.

use mudock::core::scoring::{
    inter_energy_reference, inter_energy_simd, intra_energy_reference, intra_energy_simd, PairsSoA,
};
use mudock::core::transform::{apply_pose_reference, apply_pose_simd};
use mudock::core::{Genotype, LigandPrep};
use mudock::ff::params::PairTable;
use mudock::grids::{GridBuilder, GridDims};
use mudock::mol::{ConformSoA, Vec3};
use mudock::simd::SimdLevel;
use proptest::prelude::*;

/// Strategy: a ligand spec plus a pose seed.
fn spec_strategy() -> impl Strategy<Value = (u64, usize, usize, u64)> {
    (
        0u64..1000, // ligand seed
        8usize..36, // heavy atoms
        0usize..8,  // torsions
        0u64..1000, // pose seed
    )
}

fn random_pose(seed: u64, n_torsions: usize) -> Genotype {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Genotype::random(&mut rng, n_torsions, Vec3::ZERO, 6.0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn transform_kernel_matches_reference((lig_seed, heavy, tors, pose_seed) in spec_strategy()) {
        let lig = mudock::molio::synthetic_ligand(
            lig_seed,
            mudock::molio::LigandSpec { heavy_atoms: heavy, torsions: tors },
        );
        let prep = LigandPrep::new(lig).unwrap();
        let g = random_pose(pose_seed, prep.n_torsions());
        let mut want = ConformSoA::with_capacity(prep.base.n);
        apply_pose_reference(&prep.base, &prep.plans, &g, &mut want);
        for level in SimdLevel::available() {
            let mut got = ConformSoA::with_capacity(prep.base.n);
            apply_pose_simd(level, &prep.base, &prep.plans, &g, &mut got);
            for i in 0..prep.base.n {
                let d = (got.pos(i) - want.pos(i)).norm();
                prop_assert!(d < 2e-3, "{level}: atom {i} off by {d}");
            }
        }
    }

    #[test]
    fn intra_kernel_matches_reference((lig_seed, heavy, tors, pose_seed) in spec_strategy()) {
        let lig = mudock::molio::synthetic_ligand(
            lig_seed,
            mudock::molio::LigandSpec { heavy_atoms: heavy, torsions: tors },
        );
        let prep = LigandPrep::new(lig).unwrap();
        let pairs = PairsSoA::build(&prep.mol, &prep.topo, &PairTable::new());
        // Score a *transformed* conformation, not just the base one.
        let g = random_pose(pose_seed, prep.n_torsions());
        let mut conf = ConformSoA::with_capacity(prep.base.n);
        apply_pose_reference(&prep.base, &prep.plans, &g, &mut conf);
        let want = intra_energy_reference(&conf, &pairs);
        for level in SimdLevel::available() {
            let got = intra_energy_simd(level, &conf, &pairs);
            let tol = 3e-3 * want.abs().max(1.0);
            prop_assert!(
                (got - want).abs() <= tol,
                "{level}: {got} vs {want} (tol {tol})"
            );
        }
    }
}

#[test]
fn inter_kernel_matches_reference_over_many_poses() {
    // One grid build (expensive) reused across many random poses.
    let (receptor, ligand) = mudock::molio::complex_1a30_like();
    let mut types: Vec<mudock::ff::AtomType> = ligand.atoms.iter().map(|a| a.ty).collect();
    types.sort_unstable();
    types.dedup();
    let dims = GridDims::centered(Vec3::ZERO, 10.0, 0.7);
    let maps = GridBuilder::new(&receptor, dims)
        .with_types(&types)
        .build_simd(SimdLevel::detect());
    let prep = LigandPrep::new(ligand).unwrap();

    for pose_seed in 0..40u64 {
        let g = random_pose(pose_seed, prep.n_torsions());
        let mut conf = ConformSoA::with_capacity(prep.base.n);
        apply_pose_reference(&prep.base, &prep.plans, &g, &mut conf);
        let want = inter_energy_reference(&maps, &conf, &prep.statics);
        for level in SimdLevel::available() {
            let got = inter_energy_simd(level, &maps, &conf, &prep.statics);
            let tol = 5e-3 * want.abs().max(1.0);
            assert!(
                (got - want).abs() <= tol,
                "{level} pose {pose_seed}: {got} vs {want}"
            );
        }
    }
}
