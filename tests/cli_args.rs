//! CLI argument handling: malformed or invalid campaign values must
//! surface a typed validation message on stderr and exit with code 2
//! (usage error) — never a panic, a silent default, or a generic
//! failure. Runs the real `mudock` binary.

use std::process::{Command, Output};

fn mudock(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mudock"))
        .args(args)
        .output()
        .expect("the mudock binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn invalid_campaign_values_exit_2_with_a_typed_message() {
    // (args, fragment the validation message must contain)
    let cases: &[(&[&str], &str)] = &[
        (&["serve", "--demo", "4", "--top", "0"], "top-k"),
        (&["serve", "--demo", "4", "--chunk", "0"], "chunk"),
        (&["screen", "--demo", "4", "--top", "0"], "top-k"),
        (&["screen", "--demo", "4", "--chunk", "0"], "chunk"),
        (&["dock", "--demo", "--radius", "-3"], "radius"),
        (&["dock", "--demo", "--population", "1"], "population"),
        (&["dock", "--demo", "--generations", "0"], "generations"),
        (&["screen", "--demo", "4", "--stable-window", "0"], "window"),
        (&["screen", "--demo", "4", "--max-evals", "0"], "budget"),
        (&["screen", "--demo", "4", "--chunk", "999999"], "chunk"),
        // Negative/non-finite deadlines must be usage errors, not the
        // Duration::from_secs_f64 panic.
        (&["screen", "--demo", "4", "--deadline-s", "-1"], "deadline"),
        (
            &["screen", "--demo", "4", "--deadline-s", "nan"],
            "deadline",
        ),
        // Conflicting or orphaned stop flags are rejected, not silently
        // resolved by precedence.
        (
            &[
                "screen",
                "--demo",
                "4",
                "--max-evals",
                "10",
                "--deadline-s",
                "5",
            ],
            "one stop policy",
        ),
        (
            &["screen", "--demo", "4", "--stable-eps", "0.1"],
            "--stable-window",
        ),
    ];
    for (args, fragment) in cases {
        let out = mudock(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2, stderr: {}",
            stderr(&out)
        );
        let err = stderr(&out);
        assert!(
            err.contains("error:") && err.to_lowercase().contains(fragment),
            "{args:?} stderr must mention {fragment:?}: {err}"
        );
    }
}

#[test]
fn malformed_numbers_exit_2_naming_the_flag() {
    let cases: &[(&[&str], &str)] = &[
        (&["serve", "--demo", "4", "--top", "abc"], "--top"),
        (&["serve", "--demo", "4", "--chunk", "1.5"], "--chunk"),
        (&["screen", "--demo", "4", "--seed", "0x"], "--seed"),
        (&["screen", "--demo", "nope"], "--demo"),
        (&["dock", "--demo", "--backend", "neon"], "backend"),
    ];
    for (args, flag) in cases {
        let out = mudock(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2, stderr: {}",
            stderr(&out)
        );
        assert!(
            stderr(&out).contains(flag),
            "{args:?} stderr must name {flag}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn unknown_commands_and_missing_input_are_usage_errors() {
    let out = mudock(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));

    let out = mudock(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
}

#[test]
fn valid_demo_run_succeeds_quickly() {
    let out = mudock(&[
        "screen",
        "--demo",
        "2",
        "--population",
        "8",
        "--generations",
        "3",
        "--threads",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ligands"), "stdout: {stdout}");
}
