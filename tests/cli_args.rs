//! CLI argument handling: malformed or invalid campaign values must
//! surface a typed validation message on stderr and exit with code 2
//! (usage error) — never a panic, a silent default, or a generic
//! failure. Runs the real `mudock` binary.

use std::process::{Command, Output};

fn mudock(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mudock"))
        .args(args)
        .output()
        .expect("the mudock binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn invalid_campaign_values_exit_2_with_a_typed_message() {
    // (args, fragment the validation message must contain)
    let cases: &[(&[&str], &str)] = &[
        (&["serve", "--demo", "4", "--top", "0"], "top-k"),
        (&["serve", "--demo", "4", "--chunk", "0"], "chunk"),
        (&["screen", "--demo", "4", "--top", "0"], "top-k"),
        (&["screen", "--demo", "4", "--chunk", "0"], "chunk"),
        (&["dock", "--demo", "--radius", "-3"], "radius"),
        (&["dock", "--demo", "--population", "1"], "population"),
        (&["dock", "--demo", "--generations", "0"], "generations"),
        (&["screen", "--demo", "4", "--stable-window", "0"], "window"),
        (&["screen", "--demo", "4", "--max-evals", "0"], "budget"),
        (&["screen", "--demo", "4", "--chunk", "999999"], "chunk"),
        // Negative/non-finite deadlines must be usage errors, not the
        // Duration::from_secs_f64 panic.
        (&["screen", "--demo", "4", "--deadline-s", "-1"], "deadline"),
        (
            &["screen", "--demo", "4", "--deadline-s", "nan"],
            "deadline",
        ),
        // Finite but beyond what a Duration can hold: still exit 2,
        // never the Duration::from_secs_f64 panic.
        (
            &["screen", "--demo", "4", "--deadline-s", "1e300"],
            "deadline",
        ),
        // Conflicting or orphaned stop flags are rejected, not silently
        // resolved by precedence.
        (
            &[
                "screen",
                "--demo",
                "4",
                "--max-evals",
                "10",
                "--deadline-s",
                "5",
            ],
            "one stop policy",
        ),
        (
            &["screen", "--demo", "4", "--stable-eps", "0.1"],
            "--stable-window",
        ),
    ];
    for (args, fragment) in cases {
        let out = mudock(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2, stderr: {}",
            stderr(&out)
        );
        let err = stderr(&out);
        assert!(
            err.contains("error:") && err.to_lowercase().contains(fragment),
            "{args:?} stderr must mention {fragment:?}: {err}"
        );
    }
}

#[test]
fn malformed_numbers_exit_2_naming_the_flag() {
    let cases: &[(&[&str], &str)] = &[
        (&["serve", "--demo", "4", "--top", "abc"], "--top"),
        (&["serve", "--demo", "4", "--chunk", "1.5"], "--chunk"),
        (&["screen", "--demo", "4", "--seed", "0x"], "--seed"),
        (&["screen", "--demo", "nope"], "--demo"),
        (&["dock", "--demo", "--backend", "neon"], "backend"),
    ];
    for (args, flag) in cases {
        let out = mudock(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2, stderr: {}",
            stderr(&out)
        );
        assert!(
            stderr(&out).contains(flag),
            "{args:?} stderr must name {flag}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn unknown_commands_and_missing_input_are_usage_errors() {
    let out = mudock(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));

    let out = mudock(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
}

#[test]
fn valid_demo_run_succeeds_quickly() {
    let out = mudock(&[
        "screen",
        "--demo",
        "2",
        "--population",
        "8",
        "--generations",
        "3",
        "--threads",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ligands"), "stdout: {stdout}");
}

#[test]
fn network_subcommands_validate_their_flags() {
    // (args, fragment the usage message must contain)
    let cases: &[(&[&str], &str)] = &[
        (&["submit", "--demo", "4"], "--addr"),
        (&["submit", "--addr", "127.0.0.1:1"], "--receptor"),
        (
            &["submit", "--addr", "127.0.0.1:1", "--receptor", "r.pdbqt"],
            "--ligands",
        ),
        (
            &[
                "submit",
                "--addr",
                "127.0.0.1:1",
                "--demo",
                "4",
                "--priority",
                "urgent",
            ],
            "--priority",
        ),
        (
            &[
                "submit",
                "--addr",
                "127.0.0.1:1",
                "--demo",
                "4",
                "--top",
                "0",
            ],
            "top-k",
        ),
        (&["poll", "--addr", "127.0.0.1:1"], "job id"),
        (&["poll", "--addr", "127.0.0.1:1", "seven"], "job id"),
        (&["poll", "3"], "--addr"),
        (&["serve"], "--listen"),
        (&["serve", "--listen"], "ADDR"),
    ];
    for (args, fragment) in cases {
        let out = mudock(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2, stderr: {}",
            stderr(&out)
        );
        assert!(
            stderr(&out).contains(fragment),
            "{args:?} stderr must mention {fragment:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn unreachable_server_is_a_runtime_error_not_a_panic() {
    // Port 1 on loopback: connection refused. Must exit 1 with a typed
    // message, never a panic or exit 2 (the flags were fine).
    let out = mudock(&["poll", "--addr", "127.0.0.1:1", "3"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("connection failed"),
        "stderr: {}",
        stderr(&out)
    );

    // Boolean flags must not swallow the positional job id: with
    // `--wait` right before `42`, the id still parses and the failure
    // is the unreachable server (exit 1), not a usage error (exit 2).
    let out = mudock(&["poll", "--addr", "127.0.0.1:1", "--wait", "42"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("connection failed"),
        "stderr: {}",
        stderr(&out)
    );

    let out = mudock(&[
        "submit",
        "--addr",
        "127.0.0.1:1",
        "--demo",
        "2",
        "--population",
        "4",
        "--generations",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
}
