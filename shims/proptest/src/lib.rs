//! Offline stand-in for `proptest`: randomized property testing with the
//! strategy/`proptest!` surface this workspace uses, minus shrinking.
//!
//! Each generated counterexample is reported with the test name, case
//! number, and the RNG seed of the failing case, so failures stay
//! reproducible even without shrinking. Case counts come from
//! `ProptestConfig { cases, .. }` or the `PROPTEST_CASES` env var.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::Strategy;

/// Runner configuration (subset of proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case (what `prop_assert!` returns).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-test base seed: FNV-1a of the test's name, so every
/// property gets a distinct but stable input stream.
pub fn base_seed(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// RNG for one case of one property.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(base_seed(test_name) ^ ((case as u64) << 32 | 0x5eed))
}

/// Namespace mirror of `proptest::prop` (`prop::collection`,
/// `prop::sample`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// The glob import every test file uses.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Define property tests: each argument is drawn from its strategy for
/// every case, and the body runs with `prop_assert!`-style early returns.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name),
                        case,
                        config.cases,
                        $crate::base_seed(stringify!($name)),
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Property-scoped assertion: fails the case (not the process) on false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($single:expr $(,)?) => { $single };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 1.0f32..2.0, n in 3usize..7) {
            prop_assert!((1.0..2.0).contains(&x), "x = {}", x);
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn mapped_and_filtered(v in prop::collection::vec(0u64..100, 2..5),
                               s in prop::sample::select(vec!["a", "b"])) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(s == "a" || s == "b");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn config_is_respected(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        let sa = crate::Strategy::generate(&(0u64..1000), &mut a);
        let sb = crate::Strategy::generate(&(0u64..1000), &mut b);
        assert_eq!(sa, sb);
    }
}
