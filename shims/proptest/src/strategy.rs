//! Strategies: how property inputs are generated. No shrinking — a
//! failing case reports its seed instead (see the crate docs).

use rand::rngs::StdRng;
use rand::RngExt;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Reject values failing `pred` (regenerates, up to a retry cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// References generate like the strategy they point to (lets `generate`
/// borrow without consuming).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u32, u64, usize, i32, i64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 candidates in a row",
            self.reason
        )
    }
}

/// Size specification for [`vec()`](fn@vec) (from a range of lengths).
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// `prop::collection::vec`: vectors of `element` with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::sample::select`: uniform choice from a fixed list.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select over an empty list");
    Select { options }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.options[rng.random_range(0..self.options.len())].clone()
    }
}

/// Type-erased strategy, for heterogeneous [`Union`] arms.
pub type BoxedStrategy<T> = Box<dyn Fn(&mut StdRng) -> T>;

/// Erase a strategy into a closure (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(move |rng| s.generate(rng))
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.arms[rng.random_range(0..self.arms.len())])(rng)
    }
}
