//! Offline stand-in for `crossbeam`: the `deque` work-stealing API the
//! pool crate uses (`Injector`, `Worker`, `Stealer`, `Steal`).
//!
//! The real crate is lock-free; this shim uses a `Mutex<VecDeque>` per
//! deque, which is perfectly adequate for the coarse-grained workload the
//! pool schedules (one docking run per task — milliseconds of work per
//! lock acquisition). Semantics match crossbeam where the pool depends on
//! them: LIFO local pops, FIFO steals, batched injector drains.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// Lost a race; try again. (This shim's locking never races, but
        /// the variant is kept so caller retry loops compile unchanged.)
        Retry,
    }

    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Shared FIFO queue every worker can push to and drain from.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Move a batch of tasks into `dest`'s deque and pop one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = lock(&self.queue);
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            // Take up to half of what remains (capped) as the batch, like
            // crossbeam's heuristic, so siblings still find injector work.
            let extra = (q.len() / 2).min(16);
            if extra > 0 {
                let mut dq = lock(&dest.deque);
                for t in q.drain(..extra) {
                    dq.push_back(t);
                }
            }
            Steal::Success(first)
        }
    }

    /// A worker's own deque: LIFO for the owner, FIFO for stealers.
    #[derive(Debug)]
    pub struct Worker<T> {
        deque: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Worker<T> {
            Worker {
                deque: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, task: T) {
            lock(&self.deque).push_back(task);
        }

        /// Owner-side pop (LIFO end).
        pub fn pop(&self) -> Option<T> {
            lock(&self.deque).pop_back()
        }

        pub fn is_empty(&self) -> bool {
            lock(&self.deque).is_empty()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                deque: Arc::clone(&self.deque),
            }
        }
    }

    /// Handle other workers use to steal from a [`Worker`]'s deque.
    #[derive(Clone, Debug)]
    pub struct Stealer<T> {
        deque: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steal one task from the FIFO end (opposite the owner's pops).
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.deque).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_is_lifo_stealer_is_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(3));
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn injector_batches_into_worker() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_lifo();
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
            // A batch landed locally; draining worker + injector yields all.
            let mut seen = vec![0];
            while let Some(t) = w.pop() {
                seen.push(t);
            }
            while let Steal::Success(t) = inj.steal_batch_and_pop(&w) {
                seen.push(t);
                while let Some(t) = w.pop() {
                    seen.push(t);
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn stealers_are_shareable_across_threads() {
            let inj: Injector<usize> = Injector::new();
            for i in 0..1000 {
                inj.push(i);
            }
            let w0 = Worker::new_lifo();
            let s0 = w0.stealer();
            let total = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let inj = &inj;
                let total = &total;
                scope.spawn(|| {
                    let w = Worker::new_lifo();
                    loop {
                        let t = match w.pop() {
                            Some(t) => Some(t),
                            None => match inj.steal_batch_and_pop(&w) {
                                Steal::Success(t) => Some(t),
                                _ => match s0.steal() {
                                    Steal::Success(t) => Some(t),
                                    _ => None,
                                },
                            },
                        };
                        match t {
                            Some(_) => {
                                total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                });
                loop {
                    let t = match w0.pop() {
                        Some(t) => Some(t),
                        None => match inj.steal_batch_and_pop(&w0) {
                            Steal::Success(t) => Some(t),
                            _ => None,
                        },
                    };
                    match t {
                        Some(_) => {
                            total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        None => break,
                    }
                }
            });
            assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 1000);
        }
    }
}
