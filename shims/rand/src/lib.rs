//! Offline stand-in for the `rand` crate, providing exactly the surface
//! this workspace uses (`StdRng`, `SeedableRng`, `Rng`, `RngExt`).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal deterministic PRNG instead: xoshiro256** seeded through
//! SplitMix64. Streams are stable across platforms and releases of this
//! workspace — reproducibility of seeded experiments is part of the
//! contract (see DESIGN notes in `mudock-molio`).

pub mod rngs {
    /// The workspace's standard PRNG: xoshiro256** (Blackman & Vigna),
    /// seeded via SplitMix64. Not cryptographically secure — it backs
    /// synthetic datasets and stochastic search, nothing else.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn from_u64_seed(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; guarantees a non-zero state for every seed.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        #[inline]
        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_u64_seed(seed)
        }
    }
}

/// Raw 64-bit output — the only primitive the extension traits build on.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw output ("standard"
/// distribution: floats in `[0, 1)`, integers over their full range).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 high bits → uniform multiples of 2^-24 in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable to a uniform value of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize, i64, i32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Compatibility alias trait: some call sites import `Rng`, others
/// `RngExt`; both resolve to the same extension methods.
pub trait Rng: RngExt {}
impl<T: RngExt + ?Sized> Rng for T {}

/// Convenience sampling methods, in the spirit of `rand::Rng`.
pub trait RngExt: RngCore {
    /// Uniform sample of the standard distribution for `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = r.random_range(3usize..9);
            assert!((3..9).contains(&a));
            let b = r.random_range(0u64..=4);
            assert!(b <= 4);
            let c = r.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&c));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}
