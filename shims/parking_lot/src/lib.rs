//! Offline stand-in for `parking_lot`: the subset the workspace uses
//! (`Mutex` with infallible `lock()`), layered over `std::sync`.
//! Poisoned locks are transparently recovered — matching parking_lot's
//! no-poisoning semantics.

use std::sync::TryLockError;

/// A mutex whose `lock()` returns the guard directly (no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
