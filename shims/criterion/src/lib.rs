//! Offline stand-in for `criterion`: the benchmarking surface the
//! workspace's `benches/` use, backed by a simple wall-clock sampler.
//!
//! Each benchmark warms up, then takes `sample_size` samples inside the
//! configured measurement window and reports the median time per
//! iteration plus derived throughput. No statistical regression analysis,
//! no HTML reports — numbers print to stdout, which is what the paper
//! harness consumes.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations move this many bytes.
    Bytes(u64),
}

/// Two-part benchmark id (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Benchmark runner configuration + entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(1000),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_one(&cfg, &id.into_id(), None, &mut f);
    }
}

/// A named set of benchmarks sharing throughput info.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let cfg = self.criterion.clone();
        run_one(&cfg, &full, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let cfg = self.criterion.clone();
        run_one(&cfg, &full, self.throughput, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Handed to the benchmark closure; collects timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    cfg: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: also sizes the per-sample iteration count.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < cfg.warm_up_time || warm_iters == 0 {
        f(&mut b);
        warm_iters += b.iters;
        // Grow geometrically so fast benchmarks don't spin on overhead.
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let per_sample = cfg.measurement_time.as_secs_f64() / cfg.sample_size as f64;
    let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        b.iters = iters;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[samples.len() / 10];
    let hi = samples[samples.len() - 1 - samples.len() / 10];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>10.1} Melem/s", n as f64 / median / 1e6),
        Throughput::Bytes(n) => {
            format!("  {:>10.2} GiB/s", n as f64 / median / (1u64 << 30) as f64)
        }
    });
    println!(
        "{name:<44} time: [{} {} {}]{}",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi),
        rate.unwrap_or_default()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declare a group of benchmark functions plus its runner config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).fold(0u64, |a, x| a.wrapping_add(x)))
        });
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }
}
